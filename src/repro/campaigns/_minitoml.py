"""A dependency-free TOML-subset reader for pre-3.11 Pythons.

:mod:`repro.campaigns` reads campaign files with the standard library's
:mod:`tomllib`, which only exists from Python 3.11.  The repository
supports 3.10 and bakes in no third-party TOML parser, so this module
implements ``loads`` for exactly the subset the campaign format
documents — tables, arrays of tables, bare/quoted keys, basic strings,
integers, floats, booleans, and (possibly multi-line) arrays, with
``#`` comments.  On 3.11+ the real :mod:`tomllib` is used and this
module only serves its own unit tests.

Deliberately *not* supported (campaign files do not need them):
datetimes, literal/multi-line strings, inline tables, dotted keys in
assignments, exponent-free special floats (``inf``/``nan``).
Anything outside the subset raises :class:`TOMLDecodeError` with the
offending line number, so a fancy TOML file fails loudly instead of
parsing wrong.

>>> loads('[campaign]\\nname = "nightly"\\nseeds = [1, 2]')
{'campaign': {'name': 'nightly', 'seeds': [1, 2]}}
"""

from __future__ import annotations


class TOMLDecodeError(ValueError):
    """The document is outside the supported TOML subset or malformed."""


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # --- low-level cursor helpers ------------------------------------------
    def _peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _line(self) -> int:
        return self.text.count("\n", 0, self.pos) + 1

    def _error(self, message: str) -> TOMLDecodeError:
        return TOMLDecodeError(f"line {self._line()}: {message}")

    def _skip_space(self, newlines: bool) -> None:
        """Advance past whitespace and comments.

        With ``newlines`` (between statements, inside arrays) comments
        and line breaks are skipped too; without it only same-line
        blanks are, so statement parsing can see its line ending.
        """
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t":
                self.pos += 1
            elif newlines and ch in "\r\n":
                self.pos += 1
            elif ch == "#":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
                if not newlines:
                    return
            else:
                return

    def _expect_line_end(self) -> None:
        self._skip_space(newlines=False)
        if self._peek() not in ("", "\r", "\n"):
            raise self._error(
                f"unexpected trailing text {self.text[self.pos:].splitlines()[0]!r}"
            )

    # --- grammar ------------------------------------------------------------
    def parse(self) -> dict:
        root: dict = {}
        current = root
        while True:
            self._skip_space(newlines=True)
            if self.pos >= len(self.text):
                return root
            if self._peek() == "[":
                current = self._parse_table_header(root)
            else:
                key = self._parse_key()
                self._skip_space(newlines=False)
                if self._peek() != "=":
                    raise self._error(f"expected '=' after key {key!r}")
                self.pos += 1
                self._skip_space(newlines=False)
                if key in current:
                    raise self._error(f"duplicate key {key!r}")
                current[key] = self._parse_value()
                self._expect_line_end()

    def _parse_table_header(self, root: dict) -> dict:
        array_of_tables = self.text.startswith("[[", self.pos)
        self.pos += 2 if array_of_tables else 1
        parts = [self._parse_key()]
        self._skip_space(newlines=False)
        while self._peek() == ".":
            self.pos += 1
            parts.append(self._parse_key())
            self._skip_space(newlines=False)
        closing = "]]" if array_of_tables else "]"
        if not self.text.startswith(closing, self.pos):
            raise self._error(f"expected {closing!r} closing the table header")
        self.pos += len(closing)
        self._expect_line_end()
        node = root
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if isinstance(node, list):
                node = node[-1]
            if not isinstance(node, dict):
                raise self._error(f"{part!r} is not a table")
        leaf = parts[-1]
        if array_of_tables:
            entries = node.setdefault(leaf, [])
            if not isinstance(entries, list):
                raise self._error(f"{leaf!r} is not an array of tables")
            entries.append({})
            return entries[-1]
        table = node.setdefault(leaf, {})
        if not isinstance(table, dict):
            raise self._error(f"{leaf!r} is not a table")
        return table

    def _parse_key(self) -> str:
        self._skip_space(newlines=False)
        if self._peek() == '"':
            return self._parse_string()
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() in "-_"):
            self.pos += 1
        if self.pos == start:
            raise self._error(f"expected a key, found {self._peek()!r}")
        return self.text[start : self.pos]

    def _parse_value(self):
        ch = self._peek()
        if ch == '"':
            return self._parse_string()
        if ch == "[":
            return self._parse_array()
        start = self.pos
        while self._peek() and self._peek() not in " \t\r\n#,]":
            self.pos += 1
        token = self.text[start : self.pos]
        if token == "true":
            return True
        if token == "false":
            return False
        try:
            # TOML allows readability underscores in numbers.
            plain = token.replace("_", "")
            if any(c in plain for c in ".eE") and not plain.startswith("0x"):
                return float(plain)
            return int(plain, 0)
        except ValueError:
            raise self._error(
                f"unsupported value {token!r} (subset: strings, numbers, "
                "booleans, arrays)"
            ) from None

    def _parse_string(self) -> str:
        assert self._peek() == '"'
        self.pos += 1
        out = []
        escapes = {'"': '"', "\\": "\\", "n": "\n", "t": "\t", "r": "\r"}
        while True:
            ch = self._peek()
            if ch in ("", "\n"):
                raise self._error("unterminated string")
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                escape = self._peek()
                if escape not in escapes:
                    raise self._error(f"unsupported escape \\{escape}")
                self.pos += 1
                out.append(escapes[escape])
            else:
                out.append(ch)

    def _parse_array(self) -> list:
        assert self._peek() == "["
        self.pos += 1
        items = []
        while True:
            self._skip_space(newlines=True)
            if self._peek() == "]":
                self.pos += 1
                return items
            if self._peek() == "":
                raise self._error("unterminated array")
            items.append(self._parse_value())
            self._skip_space(newlines=True)
            if self._peek() == ",":
                self.pos += 1
            elif self._peek() != "]":
                raise self._error("expected ',' or ']' in array")


def loads(text: str) -> dict:
    """Parse a TOML-subset document into nested dicts/lists.

    Raises :class:`TOMLDecodeError` (a ``ValueError``, like
    ``tomllib.TOMLDecodeError``) on anything malformed or outside the
    subset.
    """
    return _Parser(text).parse()
