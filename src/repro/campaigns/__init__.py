"""Declarative, interrupt-safe measurement campaigns.

A *campaign* is a sweep you can walk away from: a TOML file names the
scenario matrix, backend and output policy (:mod:`~repro.campaigns
.spec`); an append-only checkpoint journal records every completed
cell the moment it finishes (:mod:`~repro.campaigns.journal`); and the
runner (:mod:`~repro.campaigns.runner`) restores, re-queues and
executes so that ``repro campaign resume`` after *any* interruption —
Ctrl-C, crash, power loss — converges on the same
:class:`~repro.experiments.results.ResultSet` as an uninterrupted run.

Quick start::

    from repro.campaigns import CampaignRunner, CampaignSpec

    spec = CampaignSpec.load("nightly.toml")
    report = CampaignRunner(spec).run()
    print(report.summary_line())

or, from the command line::

    python -m repro campaign run nightly.toml --dry-run
    python -m repro campaign run nightly.toml
    python -m repro campaign status nightly.toml
    python -m repro campaign resume nightly.toml
"""

from repro.campaigns.journal import (
    JOURNAL_SCHEMA_VERSION,
    CampaignJournal,
    JournalState,
)
from repro.campaigns.runner import (
    DONE,
    PENDING,
    QUARANTINED,
    CampaignReport,
    CampaignRunner,
    CellPlan,
)
from repro.campaigns.spec import CampaignSpec

__all__ = [
    "DONE",
    "JOURNAL_SCHEMA_VERSION",
    "PENDING",
    "QUARANTINED",
    "CampaignJournal",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CellPlan",
    "JournalState",
]
