"""The declarative campaign file: TOML in, ``Suite`` + kwargs out.

A campaign file names everything an unattended, interruptible sweep
needs — the scenario matrix, the execution backend, and the output
policy — so ``repro campaign run nightly.toml`` is the whole command
line.  The format is deliberately small::

    [campaign]
    name = "nightly"                  # required; labels journal + logs
    output = "nightly.campaign"       # campaign dir (default "<name>.campaign"
                                      # beside this file)

    [matrix]                          # exactly the Suite axes
    benchmarks = ["adpcm", "gsm", "phase_thrash"]
    configurations = ["sync", "mcd_base", "attack_decay"]
    seeds = [1, 2]                    # default [1]
    scale = 0.05                      # default: REPRO_SCALE (1.0)

    [[matrix.overrides]]              # optional; each set copies the matrix
    decay_pct = 0.5

    [execution]                       # all optional; Orchestrator kwargs
    backend = "process"               # auto|thread|process|serial
    workers = "auto"                  # integer or "auto"
    batch = "auto"                    # integer or "auto"
    start_method = "spawn"            # fork|spawn|forkserver
    use_cache = true
    cache_dir = "results/cache"       # relative to this file

    [output]                          # all optional
    results = "results.json"          # ResultSet JSON, relative to output dir
    resultdb = false                  # record the campaign summary run
    resultdb_dir = "results/db"       # relative to this file

Unknown sections and keys are rejected loudly — a typo like
``bencmarks`` must not silently run an empty matrix overnight.
Relative paths resolve against the campaign file's directory, so a
campaign is reproducible from any working directory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

try:
    import tomllib as _toml
except ModuleNotFoundError:  # Python < 3.11: the bundled subset reader
    from repro.campaigns import _minitoml as _toml  # type: ignore[no-redef]

from repro.errors import CampaignError
from repro.experiments.executor import benchmark_scale
from repro.experiments.scenario import Suite

#: section -> allowed keys; anything else is a loud error.
_SCHEMA = {
    "campaign": {"name", "output"},
    "matrix": {"benchmarks", "configurations", "seeds", "scale", "overrides"},
    "execution": {
        "backend",
        "workers",
        "batch",
        "start_method",
        "use_cache",
        "cache_dir",
    },
    "output": {"results", "resultdb", "resultdb_dir"},
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignError(message)


def _string_list(value: object, where: str) -> list[str]:
    _require(
        isinstance(value, list)
        and bool(value)
        and all(isinstance(item, str) and item for item in value),
        f"{where} must be a non-empty list of strings",
    )
    return list(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CampaignSpec:
    """One parsed campaign file (see the module docstring for the format)."""

    name: str
    source: Path
    campaign_dir: Path
    benchmarks: tuple[str, ...]
    configurations: tuple[str, ...]
    seeds: tuple[int, ...] = (1,)
    scale: float | None = None
    overrides: tuple[Mapping[str, object], ...] = field(
        default_factory=lambda: ({},)
    )
    backend: str | None = None
    workers: int | str | None = None
    batch: int | str | None = None
    start_method: str | None = None
    use_cache: bool | None = None
    cache_dir: Path | None = None
    results_name: str = "results.json"
    resultdb: bool = False
    resultdb_dir: Path | None = None

    # --- construction -------------------------------------------------------
    @classmethod
    def load(
        cls, path: Path | str, output_dir: Path | str | None = None
    ) -> "CampaignSpec":
        """Parse and validate one campaign file.

        ``output_dir`` (the CLI's ``--output``) overrides the file's
        campaign directory.  Raises :class:`~repro.errors.CampaignError`
        for unreadable files, malformed TOML, unknown sections/keys,
        and wrong-typed values; matrix *content* (unknown benchmarks or
        configurations) is validated later by ``Suite.expand``.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise CampaignError(f"cannot read campaign file {path}: {exc}") from None
        try:
            data = _toml.loads(text)
        except ValueError as exc:  # tomllib.TOMLDecodeError is a ValueError
            raise CampaignError(f"{path} is not valid TOML: {exc}") from None
        return cls.from_dict(data, source=path, output_dir=output_dir)

    @classmethod
    def from_dict(
        cls,
        data: dict,
        source: Path | str,
        output_dir: Path | str | None = None,
    ) -> "CampaignSpec":
        """Build a spec from already-parsed TOML data."""
        source = Path(source)
        _require(isinstance(data, dict), "campaign file must be a TOML table")
        unknown_sections = set(data) - set(_SCHEMA)
        _require(
            not unknown_sections,
            f"unknown campaign section(s) {sorted(unknown_sections)}; "
            f"expected {sorted(_SCHEMA)}",
        )
        for section, allowed in _SCHEMA.items():
            table = data.get(section, {})
            _require(
                isinstance(table, dict),
                f"[{section}] must be a table",
            )
            unknown = set(table) - allowed
            _require(
                not unknown,
                f"unknown key(s) {sorted(unknown)} in [{section}]; "
                f"expected a subset of {sorted(allowed)}",
            )
        campaign = data.get("campaign", {})
        matrix = data.get("matrix", {})
        execution = data.get("execution", {})
        output = data.get("output", {})

        name = campaign.get("name")
        _require(
            isinstance(name, str) and bool(name),
            "[campaign] needs a non-empty string 'name'",
        )
        benchmarks = _string_list(matrix.get("benchmarks"), "[matrix] benchmarks")
        configurations = _string_list(
            matrix.get("configurations"), "[matrix] configurations"
        )
        seeds = matrix.get("seeds", [1])
        _require(
            isinstance(seeds, list)
            and bool(seeds)
            and all(isinstance(s, int) and not isinstance(s, bool) for s in seeds),
            "[matrix] seeds must be a non-empty list of integers",
        )
        scale = matrix.get("scale")
        if scale is not None:
            _require(
                isinstance(scale, (int, float))
                and not isinstance(scale, bool)
                and scale > 0,
                "[matrix] scale must be a positive number",
            )
            scale = float(scale)
        overrides = matrix.get("overrides", [{}])
        _require(
            isinstance(overrides, list)
            and bool(overrides)
            and all(isinstance(o, dict) for o in overrides),
            "[matrix] overrides must be an array of tables",
        )

        backend = execution.get("backend")
        _require(
            backend is None or isinstance(backend, str),
            "[execution] backend must be a string",
        )
        workers = execution.get("workers")
        batch = execution.get("batch")
        start_method = execution.get("start_method")
        _require(
            start_method is None or isinstance(start_method, str),
            "[execution] start_method must be a string",
        )
        use_cache = execution.get("use_cache")
        _require(
            use_cache is None or isinstance(use_cache, bool),
            "[execution] use_cache must be a boolean",
        )
        resultdb = output.get("resultdb", False)
        _require(
            isinstance(resultdb, bool), "[output] resultdb must be a boolean"
        )
        results_name = output.get("results", "results.json")
        _require(
            isinstance(results_name, str) and bool(results_name),
            "[output] results must be a non-empty file name",
        )

        base = source.resolve().parent

        def resolve(raw: object, where: str) -> Path | None:
            if raw is None:
                return None
            _require(
                isinstance(raw, str) and bool(raw),
                f"{where} must be a non-empty path string",
            )
            candidate = Path(raw)  # type: ignore[arg-type]
            return candidate if candidate.is_absolute() else base / candidate

        if output_dir is not None:
            campaign_dir = Path(output_dir)
        else:
            campaign_dir = (
                resolve(campaign.get("output"), "[campaign] output")
                or base / f"{name}.campaign"
            )
        return cls(
            name=name,
            source=source,
            campaign_dir=campaign_dir,
            benchmarks=tuple(benchmarks),
            configurations=tuple(configurations),
            seeds=tuple(seeds),
            scale=scale,
            overrides=tuple(dict(o) for o in overrides),
            backend=backend,
            workers=workers,
            batch=batch,
            start_method=start_method,
            use_cache=use_cache,
            cache_dir=resolve(execution.get("cache_dir"), "[execution] cache_dir"),
            results_name=results_name,
            resultdb=resultdb,
            resultdb_dir=resolve(output.get("resultdb_dir"), "[output] resultdb_dir"),
        )

    # --- derived forms ------------------------------------------------------
    def suite(self) -> Suite:
        """The campaign's matrix as a first-class :class:`Suite`."""
        return Suite(
            benchmarks=list(self.benchmarks),
            configurations=list(self.configurations),
            seeds=list(self.seeds),
            overrides=[dict(o) for o in self.overrides],
            scale=self.scale,
            name=self.name,
        )

    def with_execution(
        self,
        backend: str | None = None,
        workers: int | str | None = None,
        batch: int | str | None = None,
    ) -> "CampaignSpec":
        """A copy with execution knobs overridden (None keeps the file's).

        Safe on a resumed campaign by construction: :attr:`spec_hash`
        deliberately excludes backend/workers/batch, so an override
        never invalidates a journal.  Values are *not* validated here —
        the orchestrator constructor rejects unknown backends and
        malformed counts, which the CLI maps to exit 2.
        """
        updates = {}
        if backend is not None:
            updates["backend"] = backend
        if workers is not None:
            updates["workers"] = workers
        if batch is not None:
            updates["batch"] = batch
        return replace(self, **updates) if updates else self

    def orchestrator_kwargs(self) -> dict:
        """Constructor kwargs for the campaign's :class:`Orchestrator`."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "start_method": self.start_method,
            "batch": self.batch,
            "cache_dir": self.cache_dir,
            "use_cache": self.use_cache,
            "scale": self.scale,
        }

    @property
    def effective_scale(self) -> float:
        """The scale every cell will actually run at."""
        return self.scale if self.scale is not None else benchmark_scale()

    @property
    def spec_hash(self) -> str:
        """Content identity of *what the campaign computes*.

        Everything that changes cell results joins the hash — matrix
        axes, overrides, and the effective scale (resolved through
        ``REPRO_SCALE`` when the file leaves it unset, so a resume
        under a different environment scale is rejected instead of
        silently mixing result sets).  Execution knobs (backend,
        workers, batch) deliberately do not: every backend is
        byte-identical, so a campaign may resume on different hardware.
        """
        identity = json.dumps(
            {
                "name": self.name,
                "benchmarks": list(self.benchmarks),
                "configurations": list(self.configurations),
                "seeds": list(self.seeds),
                "scale": self.effective_scale,
                "overrides": [
                    sorted((str(k), v) for k, v in o.items())
                    for o in self.overrides
                ],
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha1(identity.encode()).hexdigest()[:20]

    @property
    def journal_path(self) -> Path:
        """Where this campaign's checkpoint journal lives."""
        return self.campaign_dir / "journal.jsonl"

    @property
    def results_path(self) -> Path:
        """Where the final ResultSet JSON is published."""
        return self.campaign_dir / self.results_name

    def __len__(self) -> int:
        return (
            len(self.benchmarks)
            * len(self.configurations)
            * len(self.seeds)
            * len(self.overrides)
        )


def expand_matrix(spec: CampaignSpec) -> Sequence:
    """The campaign's scenario matrix, validated against the registries."""
    return spec.suite().expand()
