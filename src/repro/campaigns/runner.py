"""Checkpointed execution of a campaign: run, status, resume.

:class:`CampaignRunner` drives one :class:`~repro.campaigns.spec
.CampaignSpec` through the :class:`~repro.experiments.orchestrator
.Orchestrator` with the checkpoint journal in the loop: every outcome
the orchestrator announces is durably journalled *before* anything
else sees it, so however the process dies — Ctrl-C, a crash, a power
cut — the journal names exactly which cells completed.  ``resume``
restores those cells' outcomes from the journal, re-queues quarantined
failures, and executes only what is missing; because simulations are
deterministic and results content-addressed, the final
:class:`~repro.experiments.results.ResultSet` is byte-identical to an
uninterrupted run of the same campaign file.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.campaigns.journal import CampaignJournal, JournalState
from repro.campaigns.spec import CampaignSpec
from repro.errors import CampaignError
from repro.execution.bus import EventBus
from repro.execution.events import CellFailed, CellFinished, JobEvent
from repro.experiments.orchestrator import Orchestrator
from repro.experiments.results import ResultSet, RunOutcome
from repro.experiments.scenario import Scenario
from repro.ioutil import atomic_write

logger = logging.getLogger(__name__)

#: Cell states as reported by :meth:`CampaignRunner.plan`.
PENDING, DONE, QUARANTINED = "pending", "done", "quarantined"


@dataclass(frozen=True)
class CellPlan:
    """One matrix cell's identity and checkpoint status."""

    index: int
    scenario: Scenario
    status: str  # PENDING | DONE | QUARANTINED


@dataclass
class CampaignReport:
    """What one ``run``/``resume`` invocation did, Icarus-style."""

    name: str
    total: int
    succeeded: int
    quarantined: int
    restored: int  # cells restored from the journal, not re-run
    executed: int  # cells actually executed this invocation
    elapsed_s: float
    results: ResultSet
    results_path: object = None  # Path once published, else None

    @property
    def ok(self) -> bool:
        """Whether every cell of the matrix succeeded."""
        return self.succeeded == self.total

    def summary_line(self) -> str:
        """The one-line completion summary."""
        parts = [
            f"campaign '{self.name}': {self.succeeded}/{self.total} cells ok",
        ]
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        parts.append(
            f"{self.executed} executed, {self.restored} restored from "
            f"checkpoint in {self.elapsed_s:.1f}s"
        )
        return " — ".join(parts)


def _scenario_key(scenario: Scenario) -> str:
    """A stable identity for matching announced outcomes to cells."""
    return json.dumps(scenario.to_dict(), sort_keys=True, default=str)


class CampaignRunner:
    """Executes one campaign spec with journalled checkpoints."""

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self.journal = CampaignJournal(spec.journal_path)

    # --- inspection ---------------------------------------------------------
    def matrix(self) -> list[Scenario]:
        """The expanded cell matrix (validates axes against registries)."""
        return self.spec.suite().expand()

    def state(self) -> JournalState:
        """The journal's view of progress (empty for a fresh campaign)."""
        return self.journal.load()

    def plan(self, state: JournalState | None = None) -> list[CellPlan]:
        """Every cell with its checkpoint status, in matrix order."""
        matrix = self.matrix()
        if state is None:
            state = self.state()
        self.journal.validate(state, self.spec.spec_hash, len(matrix))
        plans = []
        for index, scenario in enumerate(matrix):
            if index in state.completed:
                status = DONE
            elif index in state.quarantined:
                status = QUARANTINED
            else:
                status = PENDING
            plans.append(CellPlan(index=index, scenario=scenario, status=status))
        return plans

    # --- execution ----------------------------------------------------------
    def run(
        self,
        resume: bool = False,
        force: bool = False,
        on_result: Callable[[int, RunOutcome], None] | None = None,
        bus: EventBus | None = None,
    ) -> CampaignReport:
        """Execute the campaign (or what remains of it).

        ``resume`` continues from the journal: completed cells are
        restored, quarantined failures re-queued, pending cells
        executed.  Without ``resume`` a journal with prior progress is
        an error — an overnight campaign must never be half-restarted
        by accident — unless ``force`` discards it.

        The checkpoint is an event subscriber: the runner attaches its
        journalling handler to ``bus`` (its own private
        :class:`~repro.execution.bus.EventBus` when none is supplied)
        and the orchestrator publishes each cell's
        ``CellFinished``/``CellFailed`` through it.  Additional
        subscribers on a caller-supplied bus (progress printers, the
        serve daemon's stream buffers) observe exactly the journalled
        stream.  ``on_result`` still fires after each cell is
        journalled (progress displays; an exception it raises cancels
        the campaign like Ctrl-C, which the interrupt tests exploit) —
        the same lever a raising subscriber has.

        A :class:`KeyboardInterrupt` propagates to the caller *after*
        the backends cancel and the journal holds every completed cell;
        re-invoking with ``resume`` picks up where it stopped.
        """
        started = time.perf_counter()
        matrix = self.matrix()
        total = len(matrix)
        state = self.state()
        if state.entries and not resume:
            if not force:
                raise CampaignError(
                    f"campaign '{self.spec.name}' already has journalled "
                    f"progress ({len(state.completed)} of {total} cells done) "
                    f"in {self.journal.path}; 'campaign resume' continues it, "
                    "'campaign run --force' restarts from scratch"
                )
            self.journal.delete()
            state = JournalState()
        self.journal.validate(state, self.spec.spec_hash, total)
        self.journal.begin(self.spec.name, self.spec.spec_hash, total)

        pending = [i for i in range(total) if i not in state.completed]
        restored = total - len(pending)
        outcomes: dict[int, RunOutcome] = dict(state.completed)
        executed = 0

        if pending:
            # Outcomes are announced by *scenario*; identical scenarios
            # (duplicate axis entries) drain their index queue in
            # completion order, which is harmless — their outcomes are
            # identical by determinism.
            index_queues: dict[str, deque[int]] = {}
            for index in pending:
                key = _scenario_key(matrix[index])
                index_queues.setdefault(key, deque()).append(index)

            def checkpoint(event: JobEvent) -> None:
                nonlocal executed
                if not isinstance(event, (CellFinished, CellFailed)):
                    return
                outcome = event.outcome
                queue = index_queues.get(_scenario_key(outcome.scenario))
                if not queue:  # pragma: no cover - orchestrator contract
                    logger.warning(
                        "campaign %s: unexpected outcome for %s; not journalled",
                        self.spec.name, outcome.scenario.run_id,
                    )
                    return
                index = queue.popleft()
                self.journal.record(index, outcome)
                outcomes[index] = outcome
                executed += 1
                if on_result is not None:
                    on_result(index, outcome)

            events = bus if bus is not None else EventBus()
            job_id = f"campaign:{self.spec.name}"
            with events.subscribed(checkpoint, job=job_id):
                orchestrator = Orchestrator(
                    events=events,
                    job_id=job_id,
                    **self.spec.orchestrator_kwargs(),
                )
                orchestrator.run([matrix[i] for i in pending])

        ordered = ResultSet([outcomes[i] for i in sorted(outcomes)])
        succeeded = sum(1 for o in ordered if o.ok)
        report = CampaignReport(
            name=self.spec.name,
            total=total,
            succeeded=succeeded,
            quarantined=len(ordered) - succeeded,
            restored=restored,
            executed=executed,
            elapsed_s=time.perf_counter() - started,
            results=ordered,
        )
        report.results_path = self._publish(ordered)
        if self.spec.resultdb:
            self._record_resultdb(report)
        logger.info("%s", report.summary_line())
        return report

    # --- outputs ------------------------------------------------------------
    def _publish(self, results: ResultSet):
        """Atomically publish the final ResultSet JSON.

        Deterministic serialisation (sorted keys, fixed indent), so a
        resumed campaign's file is byte-identical to an uninterrupted
        run's — the property the kill-and-resume tests pin.
        """
        path = self.spec.results_path
        with atomic_write(path, "w") as handle:
            handle.write(json.dumps(results.to_dict(), indent=1, sort_keys=True))
        return path

    def _record_resultdb(self, report: CampaignReport) -> None:
        """Append the campaign summary to the result database.

        Best-effort by design: the campaign's results are already on
        disk, and a read-only or misconfigured database must not turn
        a finished overnight run into a failure.
        """
        try:
            from repro.resultdb import ResultDB

            ResultDB(self.spec.resultdb_dir).record(
                bench=f"campaign_{self.spec.name}",
                metrics={
                    "cells": report.total,
                    "succeeded": report.succeeded,
                    "quarantined": report.quarantined,
                    "elapsed_s": round(report.elapsed_s, 3),
                },
                backend=self.spec.backend,
                scale=self.spec.effective_scale,
                payload={"spec_hash": self.spec.spec_hash},
            )
        except Exception as exc:  # noqa: BLE001 - recording is best-effort
            logger.warning(
                "campaign %s: result-db record failed (%s)", self.spec.name, exc
            )
