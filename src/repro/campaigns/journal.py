"""The append-only checkpoint journal of a campaign.

One file, ``journal.jsonl``, inside the campaign directory: a header
line naming the campaign (and the :attr:`~repro.campaigns.spec
.CampaignSpec.spec_hash` of what it computes), then one JSON line per
*completed* matrix cell — success or quarantined failure — appended
durably (:func:`repro.ioutil.append_line` fsyncs each record) the
moment the orchestrator announces the outcome.  The journal is the
single source of truth for ``status`` and ``resume``:

* a cell whose latest entry is ``ok`` is **done** — resume restores
  its full :class:`~repro.experiments.results.RunOutcome` from the
  journal instead of re-running it;
* a cell whose latest entry failed is **quarantined** — it stopped
  this campaign run from retrying it, and resume re-queues it;
* a cell with no entry is **pending** — it was in flight (or never
  reached) when the campaign stopped, and re-executing it is
  idempotent because results are content-addressed in the cache.

Crash tolerance mirrors every other store in the repository: an
unparsable *trailing* line is a half-written record from a dying
process and is silently treated as "not yet journalled"; an unparsable
*interior* line is logged and skipped; a journal whose header does not
match the campaign file refuses to resume (the file changed — mixing
result sets would be silent corruption).
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CampaignError
from repro.experiments.results import RunOutcome
from repro.ioutil import append_line
from repro.resultdb.store import utc_now
from repro.version import __version__

logger = logging.getLogger(__name__)

#: Bump when the journal line layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


@dataclass
class JournalState:
    """What a journal says about a campaign's progress."""

    header: dict | None = None
    #: cell index -> restored outcome of the latest ``ok`` entry.
    completed: dict[int, RunOutcome] = field(default_factory=dict)
    #: cell index -> restored outcome of cells whose latest entry failed.
    quarantined: dict[int, RunOutcome] = field(default_factory=dict)

    @property
    def entries(self) -> int:
        return len(self.completed) + len(self.quarantined)


class CampaignJournal:
    """Reader/writer for one campaign's ``journal.jsonl``."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        """Whether any progress has ever been journalled."""
        return self.path.is_file()

    def delete(self) -> None:
        """Forget all progress (the ``run --force`` restart path)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # --- writing -----------------------------------------------------------
    def begin(self, name: str, spec_hash: str, total: int) -> None:
        """Write the header line if this journal is new."""
        if self.exists():
            return
        header = {
            "journal": JOURNAL_SCHEMA_VERSION,
            "campaign": name,
            "spec_hash": spec_hash,
            "total": total,
            "version": __version__,
            "utc": utc_now(),
        }
        append_line(self.path, json.dumps(header, sort_keys=True))

    def record(self, index: int, outcome: RunOutcome) -> None:
        """Durably append one completed cell (success or failure)."""
        entry = {
            "cell": index,
            "run_id": outcome.scenario.run_id,
            "ok": outcome.ok,
            "outcome": outcome.to_dict(),
            "utc": utc_now(),
        }
        append_line(self.path, json.dumps(entry, sort_keys=True))

    # --- reading -----------------------------------------------------------
    def load(self) -> JournalState:
        """Parse the journal into per-cell progress.

        Later entries for a cell supersede earlier ones (a resumed run
        re-journals the cells it re-executes), so replaying the file
        start to finish yields the campaign's current state.
        """
        state = JournalState()
        if not self.exists():
            return state
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise CampaignError(f"cannot read journal {self.path}: {exc}") from None
        last = len(lines) - 1
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError(f"line holds {type(data).__name__}")
            except ValueError as exc:
                if lineno == last:
                    # A crash mid-append leaves a truncated final line:
                    # that cell was never durably journalled, so it is
                    # simply still pending.
                    logger.warning(
                        "journal %s: dropping half-written final line", self.path
                    )
                else:
                    logger.warning(
                        "journal %s line %d unreadable (%s); skipping",
                        self.path, lineno + 1, exc,
                    )
                continue
            if "journal" in data and state.header is None:
                schema = data.get("journal")
                if not isinstance(schema, int) or schema > JOURNAL_SCHEMA_VERSION:
                    raise CampaignError(
                        f"journal {self.path} has schema {schema!r}, newer than "
                        f"supported ({JOURNAL_SCHEMA_VERSION}); upgrade repro"
                    )
                state.header = data
                continue
            index = data.get("cell")
            try:
                outcome = RunOutcome.from_dict(data["outcome"])
            except (KeyError, TypeError) as exc:
                logger.warning(
                    "journal %s line %d has a malformed outcome (%s); skipping",
                    self.path, lineno + 1, exc,
                )
                continue
            if not isinstance(index, int) or index < 0:
                logger.warning(
                    "journal %s line %d has a bad cell index %r; skipping",
                    self.path, lineno + 1, index,
                )
                continue
            if outcome.ok:
                state.completed[index] = outcome
                state.quarantined.pop(index, None)
            else:
                state.quarantined[index] = outcome
                state.completed.pop(index, None)
        return state

    def validate(self, state: JournalState, spec_hash: str, total: int) -> None:
        """Refuse to mix a journal with a different campaign identity."""
        if state.header is None:
            if state.entries:
                raise CampaignError(
                    f"journal {self.path} has entries but no header; it is "
                    "not a repro campaign journal"
                )
            return
        recorded = state.header.get("spec_hash")
        if recorded != spec_hash:
            raise CampaignError(
                f"journal {self.path} was written for a different campaign "
                f"(spec hash {recorded} != {spec_hash}); the campaign file "
                "or REPRO_SCALE changed — restart with 'campaign run --force' "
                "to discard the old progress"
            )
        recorded_total = state.header.get("total")
        if recorded_total != total:
            raise CampaignError(
                f"journal {self.path} records {recorded_total} cells but the "
                f"matrix expands to {total}; restart with 'campaign run "
                "--force'"
            )
        out_of_range = [i for i in (*state.completed, *state.quarantined) if i >= total]
        if out_of_range:
            raise CampaignError(
                f"journal {self.path} has cell indices {sorted(out_of_range)} "
                f"outside the {total}-cell matrix"
            )
