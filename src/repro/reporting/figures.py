"""ASCII renderings of the paper's figures (time series / sweeps)."""

from __future__ import annotations

from typing import Sequence

_BARS = " .:-=+*#%@"


def ascii_series(values: Sequence[float], width: int = 72) -> str:
    """A one-line density strip of ``values`` (down-sampled to ``width``)."""
    if not values:
        return ""
    n = len(values)
    width = min(width, n)
    buckets = []
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        chunk = values[lo:hi]
        buckets.append(sum(chunk) / len(chunk))
    vmin, vmax = min(buckets), max(buckets)
    span = vmax - vmin or 1.0
    out = []
    for v in buckets:
        level = int((v - vmin) / span * (len(_BARS) - 1))
        out.append(_BARS[level])
    return "".join(out)


def ascii_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 12,
    width: int = 64,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A small scatter/line chart on a character grid."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length, non-empty")
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = xmax - xmin or 1.0
    yspan = ymax - ymin or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        grid[row][col] = "o"
    lines = [f"{y_label}  {ymax:.4g}".rstrip()]
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.append(f"   {xmin:.4g} {x_label} -> {xmax:.4g}   (ymin={ymin:.4g})")
    return "\n".join(lines)
