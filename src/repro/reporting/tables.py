"""Fixed-width text, CSV and HTML tables for bench and CLI output."""

from __future__ import annotations

import csv
import html
import io
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # annotation only; reporting stays import-light
    from repro.experiments.results import ResultSet
    from repro.metrics.phases import PhaseSlice


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width table with a header rule.

    Cells are stringified; numeric alignment is right, text left.
    """
    cells = [[str(c) for c in row] for row in rows]
    columns = len(headers)
    for row in cells:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.replace("%", "").replace(",", "").strip()
        if not stripped:
            return False
        try:
            float(stripped)
            return True
        except ValueError:
            return False

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render ``rows`` as RFC-4180 CSV with a header line.

    >>> format_csv(["a", "b"], [[1, "x,y"]])
    'a,b\\r\\n1,"x,y"\\r\\n'
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([str(cell) for cell in row])
    return buffer.getvalue()


def format_html(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as a minimal, self-contained HTML table.

    Every cell is escaped; the output embeds in any page or renders
    standalone (``repro report --format html > report.html``).
    """
    lines = ["<table>"]
    if title:
        lines.append(f"  <caption>{html.escape(title)}</caption>")
    lines.append("  <thead><tr>")
    lines.extend(f"    <th>{html.escape(str(h))}</th>" for h in headers)
    lines.append("  </tr></thead>")
    lines.append("  <tbody>")
    for row in rows:
        cells = "".join(f"<td>{html.escape(str(c))}</td>" for c in row)
        lines.append(f"    <tr>{cells}</tr>")
    lines.append("  </tbody>")
    lines.append("</table>")
    return "\n".join(lines)


def phase_table(slices: Sequence["PhaseSlice"], title: str | None = None) -> str:
    """Render a per-phase attribution breakdown as a table.

    One row per :class:`~repro.metrics.phases.PhaseSlice`, plus a
    totals rule; shares are percentages of the whole run.
    """
    rows = []
    for s in slices:
        rows.append(
            (
                s.name,
                f"{s.instructions:,}",
                f"{s.wall_time_ns:,.0f}",
                f"{s.time_share:.1%}",
                f"{s.energy:,.0f}",
                f"{s.energy_share:.1%}",
                f"{s.cpi:.3f}",
                f"{s.epi:.3f}",
            )
        )
    rows.append(
        (
            "TOTAL",
            f"{sum(s.instructions for s in slices):,}",
            f"{sum(s.wall_time_ns for s in slices):,.0f}",
            f"{sum(s.time_share for s in slices):.1%}",
            f"{sum(s.energy for s in slices):,.0f}",
            f"{sum(s.energy_share for s in slices):.1%}",
            "-",
            "-",
        )
    )
    return format_table(
        ["Phase", "Instr", "Time (ns)", "Time %", "Energy", "Energy %", "CPI", "EPI"],
        rows,
        title=title,
    )


def resultset_table(results: "ResultSet", title: str | None = None) -> str:
    """Render an orchestrator :class:`ResultSet` as a per-run table.

    One row per scenario, in matrix order; failed runs show ``FAILED``
    in place of their metrics.
    """
    rows = []
    for outcome in results:
        scenario = outcome.scenario
        if outcome.record is not None:
            s = outcome.record.summary
            rows.append(
                (
                    scenario.benchmark,
                    scenario.configuration,
                    scenario.seed if scenario.seed is not None else "-",
                    f"{s.wall_time_ns:,.0f}",
                    f"{s.energy:,.0f}",
                    f"{s.cpi:.3f}",
                    f"{s.epi:.3f}",
                )
            )
        else:
            rows.append(
                (
                    scenario.benchmark,
                    scenario.configuration,
                    scenario.seed if scenario.seed is not None else "-",
                    "FAILED", "-", "-", "-",
                )
            )
    return format_table(
        ["Benchmark", "Configuration", "Seed", "Wall time (ns)", "Energy", "CPI", "EPI"],
        rows,
        title=title,
    )
