"""Generate EXPERIMENTS.md from the bench artifacts under ``results/``.

Each bench stores its data as JSON; this module assembles the
paper-vs-measured record.  Regenerate with::

    python -m repro.reporting.experiments
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"
OUTPUT = RESULTS_DIR.parent / "EXPERIMENTS.md"

#: Paper values for Table 6 (vs baseline MCD processor).
PAPER_TABLE6 = {
    "attack_decay": (3.2, 19.0, 16.7, 4.6),
    "dynamic_1": (3.4, 21.9, 19.6, 5.1),
    "dynamic_5": (8.7, 33.0, 27.5, 3.8),
    "Global (attack_decay)": (3.2, 6.5, 7.8, 2.0),
    "Global (dynamic_1)": (3.4, 6.6, 3.6, 2.0),
    "Global (dynamic_5)": (8.7, 12.4, 5.0, 1.9),
}


def _load(name: str) -> dict | None:
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _table6_section(lines: list[str]) -> None:
    data = _load("table6")
    lines.append("## Table 6 — algorithm comparison (vs baseline MCD)\n")
    lines.append(
        "Paper values in parentheses. Columns: performance degradation, "
        "energy savings, energy-delay improvement, power/perf ratio.\n"
    )
    if data is None:
        lines.append("*(run `pytest benchmarks/bench_table6_comparison.py` first)*\n")
        return
    lines.append("| Algorithm | Perf deg | Energy savings | EDP impr | Ratio |")
    lines.append("|---|---|---|---|---|")
    for key, row in data["rows"].items():
        paper = PAPER_TABLE6.get(key)
        p = (
            f" ({paper[0]}%) | ({paper[1]}%) | ({paper[2]}%) | ({paper[3]})"
            if paper
            else " | | |"
        )
        cells = (
            f"{row['performance_degradation'] * 100:.1f}%"
            f"{' (' + str(paper[0]) + '%)' if paper else ''} | "
            f"{row['energy_savings'] * 100:.1f}%"
            f"{' (' + str(paper[1]) + '%)' if paper else ''} | "
            f"{row['edp_improvement'] * 100:.1f}%"
            f"{' (' + str(paper[2]) + '%)' if paper else ''} | "
            f"{row['power_performance_ratio']:.1f}"
            f"{' (' + str(paper[3]) + ')' if paper else ''}"
        )
        lines.append(f"| {row['algorithm']} | {cells} |")
    if data.get("global_frequency_mhz"):
        freqs = ", ".join(
            f"{k}: {v:.0f} MHz" for k, v in data["global_frequency_mhz"].items()
        )
        lines.append(f"\nMatched global frequencies — {freqs}.\n")


def _figure4_section(lines: list[str]) -> None:
    data = _load("figure4")
    lines.append("\n## Figure 4 — per-application results (vs fully synchronous)\n")
    if data is None:
        lines.append("*(run `pytest benchmarks/bench_figure4_per_app.py` first)*\n")
        return
    avg_deg = data["performance_degradation"]["average"]
    avg_e = data["energy_savings"]["average"]
    avg_edp = data["edp_improvement"]["average"]
    lines.append("Suite averages (paper values in parentheses):\n")
    lines.append("| Configuration | Perf deg | Energy savings | EDP impr |")
    lines.append("|---|---|---|---|")
    paper = {
        "mcd_base": ("~1.3%", "<0%", "<0%"),
        "dynamic_1": ("~4.7%", "~23%", "~19%"),
        "dynamic_5": ("~10%", "~34%", "~27%"),
        "attack_decay": ("4.5%", "17.5%", "13.8%"),
    }
    for config in ("mcd_base", "dynamic_1", "dynamic_5", "attack_decay"):
        p = paper[config]
        lines.append(
            f"| {config} | {avg_deg[config] * 100:.1f}% ({p[0]}) "
            f"| {avg_e[config] * 100:.1f}% ({p[1]}) "
            f"| {avg_edp[config] * 100:.1f}% ({p[2]}) |"
        )
    lines.append(
        f"\nPer-application data for all 30 benchmarks: `results/figure4.json`.\n"
    )


def _sweep_section(lines: list[str]) -> None:
    """Summarise the last orchestrator sweep (``repro sweep --json``)."""
    data = _load("sweep")
    lines.append("\n## Custom sweeps (scenario orchestrator)\n")
    if data is None:
        lines.append(
            "*(run `python -m repro sweep --json results/sweep.json` to "
            "record a custom matrix here)*\n"
        )
        return
    from repro.experiments.results import ResultSet

    results = ResultSet.from_dict(data)
    failed = len(results.errors)
    lines.append(
        f"{len(results)} scenario(s) over {len(results.benchmarks)} "
        f"benchmark(s) x {len(results.configurations)} configuration(s)"
        + (f" — {failed} failed" if failed else "")
        + ". Data: `results/sweep.json`.\n"
    )
    for configuration, subset in results.group_by("configuration").items():
        ok = len(subset.records)
        lines.append(f"- `{configuration}`: {ok}/{len(subset)} runs completed")
    lines.append("")


def _series_section(lines: list[str], name: str, title: str, note: str) -> None:
    data = _load(name)
    lines.append(f"\n## {title}\n")
    if data is None:
        lines.append(f"*(run `pytest benchmarks/bench_{name}*.py` first)*\n")
        return
    lines.append(note + f" Data: `results/{name}.json`.\n")


def build() -> str:
    """Assemble the EXPERIMENTS.md text from the stored bench artifacts."""
    lines: list[str] = []
    lines.append("# EXPERIMENTS — paper vs measured\n")
    lines.append(
        "Reproduction of Semeraro et al., MICRO 2002, on the scaled "
        "synthetic substrate described in DESIGN.md. Absolute numbers "
        "are not comparable to the paper's SimpleScalar/Wattch stack; "
        "the *shape* — orderings, ratios, knees — is the reproduction "
        "target. Headline runs use the scaled operating point "
        "(DESIGN.md substitution #2); every scaled value lies inside "
        "the paper's Table 2 sweep ranges.\n"
    )

    for name, paper_note in (
        ("table1", "MCD configuration parameters — reproduced verbatim."),
        ("table2", "Attack/Decay parameter ranges — reproduced verbatim."),
        (
            "table3",
            "Controller hardware: 476 gates/domain, 112 shared, "
            "2,016 total for four domains (paper: 'fewer than 2,500').",
        ),
        ("table4", "Architectural parameters — reproduced verbatim."),
        (
            "table5",
            "30 benchmarks across MediaBench/Olden/Spec2000 with the "
            "paper's windows recorded and scaled windows simulated.",
        ),
    ):
        data = _load(name)
        status = "reproduced" if data is not None else "pending (run benches)"
        lines.append(f"- **{name}** — {paper_note} [{status}]")
    lines.append("")

    _table6_section(lines)
    _figure4_section(lines)

    data = _load("figure2")
    lines.append("\n## Figure 2 — load/store domain statistics (epic)\n")
    if data is not None:
        exceed = data["intervals_beyond_threshold"]
        total = len(data["lsq_pct_change"])
        fmin = min(data["ls_frequency_ghz"])
        lines.append(
            f"LSQ utilization differences straddle the ±"
            f"{data['deviation_threshold_pct']}% deviation band "
            f"({exceed}/{total} intervals beyond it; our 500-instruction "
            "intervals are noisier than the paper's 10k — substitution "
            f"#2), and the load/store frequency responds, dipping to "
            f"{fmin:.2f} GHz. Paper: frequency held through minor "
            "perturbations, decreased under sustained negative attack "
            "and decay. Data: `results/figure2.json`.\n"
        )
    else:
        lines.append("*(run `pytest benchmarks/bench_figure2_lsq.py` first)*\n")

    data = _load("figure3")
    lines.append("\n## Figure 3 — floating-point domain statistics (epic)\n")
    if data is not None:
        bursts = ", ".join(f"{u:.1f}" for u in data["burst_mean_utilization"])
        idles = ", ".join(f"{u:.2f}" for u in data["idle_mean_utilization"])
        fmin = min(data["fp_frequency_ghz"])
        lines.append(
            f"FIQ utilization: burst means [{bursts}] entries vs idle "
            f"means [{idles}] — the two distinct FP phases of the paper. "
            f"FP frequency decays to {fmin:.2f} GHz while unused and "
            "attacks back up at each burst (paper: decays toward "
            "0.55 GHz over its much longer idle stretches). Data: "
            "`results/figure3.json`.\n"
        )
    else:
        lines.append("*(run `pytest benchmarks/bench_figure3_fp.py` first)*\n")

    data = _load("figure5")
    lines.append("\n## Figure 5 — degradation-target analysis\n")
    if data is not None:
        a = data["achieved_deg_pct"]
        t = data["targets_pct"]
        edp = data["edp_improvement_pct"]
        trend = (
            "declines past the mid-range, as in the paper"
            if edp[-1] < max(edp)
            else "keeps growing slowly over our (shorter-run) range, "
            "where the paper's declines beyond ~9%"
        )
        lines.append(
            f"Achieved degradation rises with the target ({a[0]:.1f}% at "
            f"target {t[0]:.0f}% up to {a[-1]:.1f}% at target "
            f"{t[-1]:.0f}%), tracking the paper's near-ideal band over "
            f"4-10%. EDP improvement {trend}. "
            "Data: `results/figure5.json`.\n"
        )
    else:
        lines.append("*(run `pytest benchmarks/bench_figure5_target.py` first)*\n")

    for name, title, paper_shape in (
        (
            "figure6",
            "Figure 6 — EDP sensitivity (Decay, ReactionChange, DeviationThreshold)",
            "Paper shape: diminished performance at both extremes, broad "
            "flat optimum (decay 0.5-1.5%, reaction 3-12%).",
        ),
        (
            "figure7",
            "Figure 7 — power/performance-ratio sensitivity",
            "Paper shape: ratio well above the global-scaling ~2 across "
            "the sensible mid-range.",
        ),
    ):
        data = _load(name)
        lines.append(f"\n## {title}\n")
        if data is not None:
            lines.append(paper_shape + f" Data: `results/{name}.json`.\n")
            for parameter, series in data.items():
                ys = series.get("edp_improvement_pct") or series.get(
                    "power_perf_ratio"
                )
                xs = series["values"]
                pairs = ", ".join(f"{x:g}->{y:.1f}" for x, y in zip(xs, ys))
                lines.append(f"- `{parameter}`: {pairs}")
            lines.append("")
        else:
            lines.append(f"*(run `pytest benchmarks/bench_{name}_*.py` first)*\n")

    _sweep_section(lines)

    data = _load("ablation")
    lines.append("\n## Ablations\n")
    if data is not None:
        lines.append("| Variant | Perf deg | Energy | EDP | Ratio |")
        lines.append("|---|---|---|---|---|")
        for row in data["rows"]:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        lines.append("")
    else:
        lines.append("*(run `pytest benchmarks/bench_ablation.py` first)*\n")

    return "\n".join(lines) + "\n"


def main() -> None:
    """Write EXPERIMENTS.md next to the results directory."""
    OUTPUT.write_text(build())
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
