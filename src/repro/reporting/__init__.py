"""Rendering of paper-shaped tables and ASCII figures."""

from repro.reporting.figures import ascii_chart, ascii_series
from repro.reporting.tables import format_csv, format_html, format_table, phase_table

__all__ = [
    "ascii_chart",
    "ascii_series",
    "format_csv",
    "format_html",
    "format_table",
    "phase_table",
]
