"""The ``repro campaign`` verb: handlers and parser registration.

Split out of :mod:`repro.cli` (a pure move plus the execution-override
options) so the top-level module stays a routing table.  Behaviour and
exit codes are unchanged: 0 success, 1 incomplete/quarantined, 2
usage/configuration errors, 130 interrupted after checkpointing.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.errors import CampaignError, ExperimentError


def _interrupt_cleanup() -> None:
    """Synchronous shared-memory teardown for the Ctrl-C path.

    The orchestrator's backends have already cancelled their work by
    the time an interrupt reaches the CLI; what can remain are exported
    ``/dev/shm`` trace segments whose atexit backstop only fires at
    interpreter exit — too late when the CLI is embedded in a larger
    process, and worth doing eagerly even when it is not.
    """
    from repro.uarch.shared_trace import emergency_cleanup

    try:
        emergency_cleanup()
    except Exception:  # noqa: BLE001 - never mask the 130 exit
        logging.getLogger(__name__).warning(
            "shared-memory cleanup failed during interrupt", exc_info=True
        )


def _campaign_dry_run(runner) -> int:
    """Print the expanded cell plan without running anything."""
    from repro.experiments import Orchestrator
    from repro.reporting.tables import format_table

    spec = runner.spec
    plans = runner.plan()
    # Constructing the orchestrator validates every execution knob
    # (backend, workers, batch, start method, REPRO_* defaults) before
    # the user commits a night to the campaign.
    Orchestrator(**spec.orchestrator_kwargs())
    rows = [
        (str(p.index), p.scenario.run_id, p.status) for p in plans
    ]
    print(
        format_table(
            ["Cell", "Scenario", "Status"],
            rows,
            title=f"Campaign '{spec.name}' plan ({len(plans)} cells, dry run)",
        )
    )
    pending = sum(1 for p in plans if p.status != "done")
    print(f"\ncampaign file: {spec.source}")
    print(f"output dir:    {spec.campaign_dir}")
    print(f"journal:       {spec.journal_path}")
    print(f"spec hash:     {spec.spec_hash}")
    print(
        f"execution:     backend={spec.backend or 'auto'} "
        f"workers={spec.workers or 1} batch={spec.batch or 'auto'}"
    )
    print(f"\n{pending} cell(s) would execute; nothing was run.")
    return 0


def _campaign_status_payload(runner) -> dict:
    """The campaign's progress in the daemon's job-status shape.

    Same keys as ``Job.status_payload`` (``repro serve``'s
    ``GET /jobs/{id}``), so one consumer parses both.  ``state`` uses
    the journal's vocabulary: ``pending`` (no journal), ``partial``
    (interrupted with cells remaining), ``failed`` (complete but with
    quarantined cells) or ``finished``; ``events`` counts journal
    entries and ``elapsed_s`` is null — a journal records outcomes,
    not wall-clock.
    """
    spec = runner.spec
    total = len(runner.matrix())
    if not runner.journal.exists():
        done = failed = entries = 0
        state = "pending"
    else:
        plans = runner.plan()
        done = sum(1 for p in plans if p.status == "done")
        failed = sum(1 for p in plans if p.status == "quarantined")
        entries = runner.state().entries
        if done == total:
            state = "finished"
        elif done + failed == total:
            state = "failed"
        else:
            state = "partial"
    return {
        "id": f"campaign:{spec.name}",
        "label": spec.name,
        "state": state,
        "total": total,
        "done": done,
        "failed": failed,
        "events": entries,
        "elapsed_s": None,
    }


def _campaign_status(runner, as_json: bool = False) -> int:
    """Summarise journalled progress; 0 only when fully complete and ok."""
    from repro.reporting.tables import format_table

    spec = runner.spec
    if as_json:
        payload = _campaign_status_payload(runner)
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0 if payload["state"] == "finished" else 1
    if not runner.journal.exists():
        print(
            f"campaign '{spec.name}': not started "
            f"(no journal at {spec.journal_path})"
        )
        return 1
    plans = runner.plan()
    done = sum(1 for p in plans if p.status == "done")
    quarantined = [p for p in plans if p.status == "quarantined"]
    pending = len(plans) - done - len(quarantined)
    print(
        f"campaign '{spec.name}': {done}/{len(plans)} cells done, "
        f"{len(quarantined)} quarantined, {pending} pending"
    )
    print(f"journal: {spec.journal_path}")
    if quarantined:
        state = runner.state()
        rows = []
        for plan in quarantined:
            error = state.quarantined[plan.index].error or ""
            rows.append(
                (str(plan.index), plan.scenario.run_id,
                 error.strip().splitlines()[-1][:60] if error else "")
            )
        print()
        print(
            format_table(
                ["Cell", "Scenario", "Error"],
                rows,
                title="Quarantined cells (re-queued by 'campaign resume')",
            )
        )
    if pending or quarantined:
        print(f"\ncontinue with: repro campaign resume {spec.source}")
        return 1
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaigns import CampaignRunner, CampaignSpec

    if getattr(args, "verbose", False):
        logging.basicConfig(
            level=logging.INFO, format="%(levelname)s %(message)s"
        )
    try:
        spec = CampaignSpec.load(args.file, output_dir=args.output)
        if args.action in ("run", "resume"):
            # Execution knobs are resume-safe overrides: the spec hash
            # deliberately excludes them, and validation happens in the
            # orchestrator constructor (unknown values exit 2 below).
            spec = spec.with_execution(
                backend=args.backend, workers=args.workers, batch=args.batch
            )
        runner = CampaignRunner(spec)
        if args.action == "status":
            return _campaign_status(runner, as_json=args.json)
        if args.action == "run" and args.dry_run:
            return _campaign_dry_run(runner)
        bus = None
        if getattr(args, "progress", False):
            from repro.execution.bus import EventBus
            from repro.execution.progress import ConsoleProgress

            bus = EventBus()
            bus.subscribe(ConsoleProgress(), job=f"campaign:{spec.name}")
        report = runner.run(
            resume=args.action == "resume",
            force=getattr(args, "force", False),
            bus=bus,
        )
    except (CampaignError, ExperimentError) as exc:
        print(f"campaign: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Completed cells are already durably journalled; release the
        # shared-memory segments now (the atexit guard never runs if a
        # parent loop keeps this interpreter alive) and exit 130.
        _interrupt_cleanup()
        print(
            f"\ncampaign: interrupted — progress checkpointed in "
            f"{spec.journal_path}; continue with "
            f"'repro campaign resume {args.file}'",
            file=sys.stderr,
        )
        return 130
    print(report.summary_line())
    for outcome in report.results.errors:
        print(f"\nQUARANTINED {outcome.scenario.run_id}:\n{outcome.error}")
    if report.results_path is not None:
        print(f"results: {report.results_path}")
    return 0 if report.ok else 1


def register_campaign_parser(sub) -> None:
    """Attach the ``campaign`` subcommand to the top-level subparsers."""
    camp_p = sub.add_parser(
        "campaign",
        help="run a declarative TOML campaign with checkpointed progress",
    )
    camp_sub = camp_p.add_subparsers(dest="action", required=True)

    def add_campaign_arguments(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument("file", help="campaign TOML file")
        parser_.add_argument(
            "--output",
            default=None,
            help="campaign directory (default: the file's [campaign] output)",
        )

    def add_execution_overrides(parser_: argparse.ArgumentParser) -> None:
        """--backend/--workers/--batch, resume-safe by spec-hash design."""
        parser_.add_argument(
            "--backend",
            default=None,
            help="override the file's backend (auto|thread|process|serial); "
            "safe on resume — execution knobs are outside the spec hash",
        )
        parser_.add_argument(
            "--workers",
            default=None,
            help="override the file's worker count (integer or 'auto')",
        )
        parser_.add_argument(
            "--batch",
            default=None,
            help="override the file's batch-cell size (integer or 'auto')",
        )
        parser_.add_argument(
            "--progress",
            action="store_true",
            help="print one line per completed cell (an event subscriber)",
        )
        parser_.add_argument(
            "--verbose", action="store_true", help="progress logging"
        )

    camp_run = camp_sub.add_parser(
        "run", help="execute the campaign from scratch"
    )
    add_campaign_arguments(camp_run)
    camp_run.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded cell plan and exit without running",
    )
    camp_run.add_argument(
        "--force",
        action="store_true",
        help="discard any journalled progress and restart from scratch",
    )
    add_execution_overrides(camp_run)
    camp_run.set_defaults(func=_cmd_campaign)

    camp_status = camp_sub.add_parser(
        "status", help="summarise journalled progress without running"
    )
    add_campaign_arguments(camp_status)
    camp_status.add_argument(
        "--json",
        action="store_true",
        help="emit the daemon job-status payload shape instead of text",
    )
    camp_status.set_defaults(func=_cmd_campaign)

    camp_resume = camp_sub.add_parser(
        "resume",
        help="continue an interrupted campaign from its journal",
    )
    add_campaign_arguments(camp_resume)
    add_execution_overrides(camp_resume)
    camp_resume.set_defaults(func=_cmd_campaign)
