"""Crash-safe filesystem publication shared by every on-disk store.

The result cache (:mod:`repro.experiments.cache`), the compiled-trace
store (:mod:`repro.uarch.compiled_trace`) and the ETF exporter
(:mod:`repro.uarch.etf`) all publish files the same way: write the full
payload to a temporary file in the destination directory, flush and
fsync it, then :func:`os.replace` it into place.  Readers — including
concurrent orchestrator workers on other processes — therefore only
ever observe complete files; the worst case under a crash is a stray
``*.tmp``, never a truncated entry.  The fsync *before* the rename is
load-bearing for that guarantee: a rename can be durable before the
data it names, so without it a power loss could publish a zero-length
or partial file under the final name.  (The containing directory is
fsynced best-effort too, so the rename itself survives the crash.)
This module is the single copy of that pattern.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_write(path: Path | str, mode: str = "wb") -> Iterator[IO]:
    """Open a handle whose contents appear at ``path`` atomically.

    The destination directory is created if missing.  The handle writes
    to a temporary sibling; on clean exit the file is flushed, fsynced
    and renamed over ``path`` in one :func:`os.replace` (followed by a
    best-effort fsync of the directory), and on any exception the
    temporary is unlinked and the destination left untouched.

    >>> import tempfile as _tf
    >>> from pathlib import Path as _P
    >>> target = _P(_tf.mkdtemp()) / "out.txt"
    >>> with atomic_write(target, "w") as handle:
    ...     _ = handle.write("complete")
    >>> target.read_text()
    'complete'
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            # Make the payload durable *before* the rename publishes
            # its name — otherwise a power loss can surface a
            # zero-length or partial file at ``path``.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync, making a rename itself durable.

    Not every platform/filesystem supports opening a directory for
    fsync (Windows does not); failure only weakens durability of the
    *rename*, never atomicity, so it is deliberately non-fatal.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
