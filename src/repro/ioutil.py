"""Crash-safe filesystem publication shared by every on-disk store.

The result cache (:mod:`repro.experiments.cache`), the compiled-trace
store (:mod:`repro.uarch.compiled_trace`) and the ETF exporter
(:mod:`repro.uarch.etf`) all publish files the same way: write the full
payload to a temporary file in the destination directory, flush and
fsync it, then :func:`os.replace` it into place.  Readers — including
concurrent orchestrator workers on other processes — therefore only
ever observe complete files; the worst case under a crash is a stray
``*.tmp``, never a truncated entry.  The fsync *before* the rename is
load-bearing for that guarantee: a rename can be durable before the
data it names, so without it a power loss could publish a zero-length
or partial file under the final name.  (The containing directory is
fsynced best-effort too, so the rename itself survives the crash.)
This module is the single copy of that pattern.
"""

from __future__ import annotations

import logging
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

logger = logging.getLogger(__name__)


@contextmanager
def atomic_write(path: Path | str, mode: str = "wb") -> Iterator[IO]:
    """Open a handle whose contents appear at ``path`` atomically.

    The destination directory is created if missing.  The handle writes
    to a temporary sibling; on clean exit the file is flushed, fsynced
    and renamed over ``path`` in one :func:`os.replace` (followed by a
    best-effort fsync of the directory), and on any exception the
    temporary is unlinked and the destination left untouched.

    >>> import tempfile as _tf
    >>> from pathlib import Path as _P
    >>> target = _P(_tf.mkdtemp()) / "out.txt"
    >>> with atomic_write(target, "w") as handle:
    ...     _ = handle.write("complete")
    >>> target.read_text()
    'complete'
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, mode) as handle:
            yield handle
            # Make the payload durable *before* the rename publishes
            # its name — otherwise a power loss can surface a
            # zero-length or partial file at ``path``.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def append_line(path: Path | str, line: str) -> None:
    """Durably append one newline-terminated record to ``path``.

    The journalling sibling of :func:`atomic_write`: where that
    publishes a whole file at once, this appends a single small record
    (one journal line) and fsyncs before returning, so a crash
    immediately after the call can never lose it.  A crash *during*
    the write can leave a truncated final line — readers of
    line-oriented journals must treat an unparsable trailing line as
    "not yet written", which mirrors how ``atomic_write`` readers
    treat a missing file.  The destination directory is created if
    missing.

    >>> import tempfile as _tf
    >>> from pathlib import Path as _P
    >>> journal = _P(_tf.mkdtemp()) / "journal.jsonl"
    >>> append_line(journal, '{"cell": 0}')
    >>> append_line(journal, '{"cell": 1}')
    >>> journal.read_text().splitlines()
    ['{"cell": 0}', '{"cell": 1}']
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not line.endswith("\n"):
        line += "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


#: Age below which a ``*.tmp`` file is presumed to belong to a live
#: writer and left alone (an in-flight :func:`atomic_write` lives
#: milliseconds; an hour is orders of magnitude past any real write).
STALE_TMP_AGE_SECONDS = 3600.0

#: Directories already swept by this process — every store constructor
#: calls :func:`sweep_stale_tmp`, and one scan per directory per
#: process is enough.
_SWEPT_DIRS: set[Path] = set()


def sweep_stale_tmp(
    directory: Path | str,
    max_age_seconds: float = STALE_TMP_AGE_SECONDS,
    once_per_process: bool = True,
) -> int:
    """Best-effort removal of crashed writers' ``*.tmp`` droppings.

    Every :func:`atomic_write` that dies between ``mkstemp`` and
    ``os.replace`` leaves a ``<name>.<random>.tmp`` sibling behind;
    harmless individually, they accumulate forever in long-lived cache
    and database directories.  Stores call this when they open a
    directory.  The age gate keeps concurrent writers safe: a tmp file
    younger than ``max_age_seconds`` may belong to a live
    ``atomic_write`` on another worker and is left untouched.  Returns
    the number of files removed; every failure (vanished file,
    permissions, unreadable directory) is non-fatal.
    """
    directory = Path(directory)
    if once_per_process:
        if directory in _SWEPT_DIRS:
            return 0
        _SWEPT_DIRS.add(directory)
    if not directory.is_dir():
        return 0
    cutoff = time.time() - max_age_seconds
    removed = 0
    try:
        candidates = list(directory.glob("*.tmp"))
    except OSError:  # pragma: no cover - unreadable directory
        return 0
    for path in candidates:
        try:
            if path.stat().st_mtime >= cutoff:
                continue
            path.unlink()
            removed += 1
        except OSError:  # a live writer renamed/removed it, or EPERM
            continue
    if removed:
        logger.info(
            "removed %d stale tmp file(s) from %s", removed, directory
        )
    return removed


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync, making a rename itself durable.

    Not every platform/filesystem supports opening a directory for
    fsync (Windows does not); failure only weakens durability of the
    *rename*, never atomicity, so it is deliberately non-fatal.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
