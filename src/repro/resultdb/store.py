"""Append-only, versioned store of benchmark runs.

The repository's performance trajectory lives here: every benchmark
invocation appends one immutable record — the metric payload plus full
provenance (spec hash, repro version, host fingerprint, compiler
banner, backend, scale, UTC timestamp) — and nothing ever rewrites or
deletes one.  ``repro report`` renders the trajectory and ``repro
check`` gates CI against it, so the invariants are exactly the result
cache's, but for *history* instead of *identity*:

* **one file per run** under ``<db>/runs/``, named so lexicographic
  order is chronological order;
* **atomic publication** via :func:`repro.ioutil.atomic_write` —
  concurrent appenders (pool workers, parallel CI jobs on a shared
  volume) each publish their own file, so no append can lose another;
* **recoverable reads** — a truncated, garbage or wrong-schema entry
  is logged and skipped, never fatal; one corrupt record must not take
  down the trajectory that contains it.

The default location is ``results/db`` in the repository
(``REPRO_RESULTDB_DIR`` overrides it; ``REPRO_RESULTDB=0`` stops the
benchmark harness from auto-recording).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import uuid
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import ResultDBError
from repro.ioutil import atomic_write, sweep_stale_tmp
from repro.resultdb.provenance import provenance as default_provenance

logger = logging.getLogger(__name__)

#: Bump when the record layout changes incompatibly.  Readers skip
#: records from *newer* schemas (they cannot interpret them) but keep
#: accepting older ones they understand.
DB_SCHEMA_VERSION = 1

#: Default database location, beside the result cache.
DEFAULT_DB_DIR = Path(__file__).resolve().parents[3] / "results" / "db"


def default_db_dir() -> Path:
    """The database directory: ``REPRO_RESULTDB_DIR`` or ``results/db``."""
    env = os.environ.get("REPRO_RESULTDB_DIR")
    return Path(env) if env else DEFAULT_DB_DIR


def utc_now() -> str:
    """The current UTC time in the store's ISO-8601 layout.

    Microsecond resolution: record timestamps are the trajectory's
    sort key, so two appends in quick succession must still order
    (the random run id only breaks genuinely simultaneous ties).
    """
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ")


@dataclass(frozen=True)
class StoredRun:
    """One immutable benchmark run in the result database.

    ``metrics`` holds the flat numeric summary the query/gate layers
    operate on (e.g. ``native_vs_python``, ``compiled_ips``);
    ``payload`` keeps the benchmark's full artifact (per-benchmark
    rows, knobs) for forensics.  Everything else is provenance.
    """

    run_id: str
    bench: str
    recorded_utc: str
    spec_hash: str
    version: str
    host: dict
    metrics: dict
    schema: int = DB_SCHEMA_VERSION
    compiler: dict | None = None
    native: bool | None = None
    backend: str | None = None
    scale: float | None = None
    payload: dict = field(default_factory=dict)

    #: Fields a record file must carry to be loadable.
    REQUIRED = ("run_id", "bench", "recorded_utc", "spec_hash", "version", "host", "metrics")

    @property
    def host_id(self) -> str:
        """The stable host identity this run was measured on."""
        return str(self.host.get("host_id", "unknown"))

    def metric(self, name: str) -> float | None:
        """The numeric value of ``name``, or None when absent/non-numeric."""
        value = self.metrics.get(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    def to_dict(self) -> dict:
        """The JSON-serialisable record layout written to disk."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> StoredRun:
        """Rebuild a run from its record dict.

        Raises :class:`~repro.errors.ResultDBError` on anything that is
        not a complete, compatible record — the store turns that into a
        logged skip.
        """
        if not isinstance(data, dict):
            raise ResultDBError(f"record is {type(data).__name__}, expected a dict")
        missing = [key for key in cls.REQUIRED if key not in data]
        if missing:
            raise ResultDBError(f"record is missing fields {missing}")
        schema = data.get("schema", 0)
        if not isinstance(schema, int) or schema > DB_SCHEMA_VERSION:
            raise ResultDBError(
                f"record schema {schema!r} is newer than supported "
                f"({DB_SCHEMA_VERSION}); upgrade repro to read it"
            )
        if not isinstance(data["metrics"], dict) or not isinstance(data["host"], dict):
            raise ResultDBError("record metrics/host have the wrong shape")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def _numeric_items(mapping: dict) -> dict:
    """The plain-number entries of ``mapping`` (bools excluded)."""
    return {
        key: float(value)
        for key, value in mapping.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def extract_metrics(payload: dict) -> dict:
    """Pull the flat numeric metrics out of a bench artifact payload.

    The harness convention is ``{"runs": [...], "aggregate": {...}}``;
    the aggregate's numeric scalars are the trajectory metrics.  A
    payload without an aggregate contributes its own top-level numeric
    scalars instead, so ad-hoc metric files ingest too.

    >>> extract_metrics({"aggregate": {"speedup": 3.5, "native": True}})
    {'speedup': 3.5}
    >>> extract_metrics({"rps": 54.0, "note": "ad hoc"})
    {'rps': 54.0}
    """
    aggregate = payload.get("aggregate")
    if isinstance(aggregate, dict):
        return _numeric_items(aggregate)
    return _numeric_items(payload)


class ResultDB:
    """The append-only run store (see module docstring for invariants)."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_db_dir()
        # Crashed appenders leave ``*.tmp`` siblings beside the run
        # records; reap the stale ones (age-gated, so a live appender
        # on another process is untouched).
        sweep_stale_tmp(self.runs_dir)

    @property
    def runs_dir(self) -> Path:
        """Where the one-file-per-run records live."""
        return self.directory / "runs"

    # --- writing -----------------------------------------------------------
    def spec_hash(self, bench: str, metrics: dict, backend: str | None, scale) -> str:
        """Content hash of *what was measured* (not the measured values).

        Two runs with equal spec hashes are comparable points on one
        trajectory: same bench, same metric set, same backend and
        workload scale.
        """
        identity = json.dumps(
            {
                "schema": DB_SCHEMA_VERSION,
                "bench": bench,
                "metrics": sorted(metrics),
                "backend": backend,
                "scale": scale,
            },
            sort_keys=True,
        )
        return hashlib.sha1(identity.encode()).hexdigest()[:20]

    def record(
        self,
        bench: str,
        metrics: dict,
        payload: dict | None = None,
        backend: str | None = None,
        scale: float | None = None,
        native: bool | None = None,
        stamp: dict | None = None,
        recorded_utc: str | None = None,
    ) -> StoredRun:
        """Append one run and return the stored record.

        ``stamp`` defaults to this process's
        :func:`~repro.resultdb.provenance.provenance`; pass one
        explicitly when ingesting results measured elsewhere.
        """
        metrics = _numeric_items(metrics)
        if not metrics:
            raise ResultDBError(f"run of {bench!r} has no numeric metrics to record")
        payload = payload if payload is not None else {}
        stamp = stamp if stamp is not None else default_provenance()
        aggregate = payload.get("aggregate") if isinstance(payload.get("aggregate"), dict) else {}
        if scale is None and isinstance(aggregate.get("scale"), (int, float)):
            scale = float(aggregate["scale"])
        if native is None and isinstance(aggregate.get("native"), bool):
            native = aggregate["native"]
        run = StoredRun(
            run_id=uuid.uuid4().hex[:20],
            bench=bench,
            recorded_utc=recorded_utc or utc_now(),
            spec_hash=self.spec_hash(bench, metrics, backend, scale),
            version=str(stamp.get("version", "unknown")),
            host=dict(stamp.get("host") or {}),
            compiler=stamp.get("compiler"),
            native=native,
            backend=backend,
            scale=scale,
            metrics=metrics,
            payload=payload,
        )
        self.append(run)
        return run

    def append(self, run: StoredRun) -> Path:
        """Publish ``run`` as its own atomically-written record file.

        The filename leads with the timestamp so a directory listing
        is the trajectory in order; the run id suffix keeps concurrent
        appends (and equal-second runs) from ever colliding.
        """
        compact = run.recorded_utc.replace(":", "").replace("-", "").replace(".", "")
        path = self.runs_dir / f"{compact}-{run.run_id}.json"
        with atomic_write(path, "w") as handle:
            handle.write(json.dumps(run.to_dict(), indent=1, sort_keys=True))
        return path

    def record_payload(
        self,
        bench: str,
        payload: dict,
        backend: str | None = None,
    ) -> StoredRun:
        """Append an in-memory bench artifact (the harness write hook).

        Same contract as :meth:`ingest` without the file read: metrics
        come out of the payload via :func:`extract_metrics`.
        """
        return self.record(
            bench=bench,
            metrics=extract_metrics(payload),
            payload=payload,
            backend=backend,
        )

    def ingest(
        self,
        path: Path | str,
        bench: str | None = None,
        backend: str | None = None,
    ) -> StoredRun:
        """Append a benchmark artifact JSON file (``results/bench_*.json``).

        The bench name defaults to the file stem; metrics come from the
        payload via :func:`extract_metrics`.  Raises
        :class:`~repro.errors.ResultDBError` for unreadable files or
        payloads with nothing numeric to record.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ResultDBError(f"cannot read {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ResultDBError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ResultDBError(f"{path} holds {type(payload).__name__}, expected an object")
        return self.record_payload(bench or path.stem, payload, backend=backend)

    # --- reading -----------------------------------------------------------
    def runs(self) -> list[StoredRun]:
        """Every readable run, oldest first.

        Unreadable or incompatible record files are logged at WARNING
        and skipped — the trajectory survives any single bad entry.
        """
        loaded = []
        if not self.runs_dir.is_dir():
            return loaded
        for path in sorted(self.runs_dir.glob("*.json")):
            try:
                data = json.loads(path.read_text())
                loaded.append(StoredRun.from_dict(data))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError, ResultDBError) as exc:
                logger.warning("result db entry %s unreadable (%s); skipping", path, exc)
        loaded.sort(key=lambda run: (run.recorded_utc, run.run_id))
        return loaded
