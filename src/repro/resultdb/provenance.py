"""Who/what/where stamping for recorded runs.

Every run appended to the result database carries enough context to
compare it against history honestly: performance numbers from a
different machine, interpreter, compiler or repro version are different
populations, and a regression gate that mixes them silently is
worthless.  This module derives that context once per process:

* :func:`host_fingerprint` — the measuring machine (hostname, OS,
  architecture, interpreter, core count) plus a stable ``host_id``
  content hash that the query layer groups baselines by;
* :func:`provenance` — the full stamp: repro ``__version__``, the host
  fingerprint, the resolved C compiler identity (the same ingredients
  :func:`repro.uarch.native._build_stamp` hashes into the native
  artifact name, via the public
  :func:`~repro.uarch.native.compiler_info`), and whether the native
  loop is enabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket

from repro.uarch.native import compiler_info, native_enabled
from repro.version import __version__

#: Fields of the host fingerprint that define the *identity* of a host
#: for baseline grouping.  ``cpu_count`` is recorded but excluded: VM
#: resizes should not orphan a machine's perf history.
_HOST_ID_FIELDS = ("hostname", "os", "machine", "python")


def host_fingerprint() -> dict:
    """Describe the measuring machine, including a stable ``host_id``.

    >>> fp = host_fingerprint()
    >>> sorted(fp) == ['cpu_count', 'host_id', 'hostname', 'machine', 'os', 'python']
    True
    >>> len(fp["host_id"])
    12
    """
    info = {
        "hostname": socket.gethostname(),
        "os": f"{platform.system()} {platform.release()}",
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }
    identity = json.dumps(
        {field: info[field] for field in _HOST_ID_FIELDS}, sort_keys=True
    )
    info["host_id"] = hashlib.sha1(identity.encode()).hexdigest()[:12]
    return info


def provenance() -> dict:
    """The full provenance stamp for one recorded run.

    Keys: ``version`` (repro ``__version__``), ``host`` (see
    :func:`host_fingerprint`), ``compiler`` (resolved path + banner
    line, or None without a C toolchain) and ``native_enabled``
    (``REPRO_NATIVE`` gate — whether the native loop *may* run; the
    per-run ``native`` flag in bench payloads records whether it did).
    """
    return {
        "version": __version__,
        "host": host_fingerprint(),
        "compiler": compiler_info(),
        "native_enabled": native_enabled(),
    }
