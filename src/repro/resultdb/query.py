"""Query layer over the append-only run store.

Pure functions over ``list[StoredRun]`` — the store loads, this module
slices.  The shapes the CLI and the regression gate need:

* :func:`filter_runs` — narrow a trajectory by bench, metric presence,
  backend, repro version, host or scale;
* :func:`trajectory` — the (run, value) series of one metric on one
  bench, oldest first;
* :func:`latest_per_host` — each machine's most recent run of a bench,
  the per-host baseline candidates;
* :func:`best_value` — the strongest recorded value, preferring the
  querying host's own history (cross-machine numbers are a different
  population; they are only a fallback).
"""

from __future__ import annotations

from repro.resultdb.store import StoredRun


def filter_runs(
    runs: list[StoredRun],
    bench: str | None = None,
    metric: str | None = None,
    backend: str | None = None,
    version: str | None = None,
    host_id: str | None = None,
    scale: float | None = None,
) -> list[StoredRun]:
    """The runs matching every given criterion (None = don't care)."""
    selected = []
    for run in runs:
        if bench is not None and run.bench != bench:
            continue
        if metric is not None and run.metric(metric) is None:
            continue
        if backend is not None and run.backend != backend:
            continue
        if version is not None and run.version != version:
            continue
        if host_id is not None and run.host_id != host_id:
            continue
        if scale is not None and run.scale != scale:
            continue
        selected.append(run)
    return selected


def benches(runs: list[StoredRun]) -> list[str]:
    """The distinct bench names present, sorted."""
    return sorted({run.bench for run in runs})


def metric_names(runs: list[StoredRun]) -> list[str]:
    """The union of numeric metric names across ``runs``, sorted."""
    names: set[str] = set()
    for run in runs:
        names.update(name for name in run.metrics if run.metric(name) is not None)
    return sorted(names)


def trajectory(
    runs: list[StoredRun], bench: str, metric: str
) -> list[tuple[StoredRun, float]]:
    """The (run, value) series of ``metric`` on ``bench``, oldest first."""
    series = []
    for run in filter_runs(runs, bench=bench, metric=metric):
        series.append((run, run.metric(metric)))
    return series


def latest_run(runs: list[StoredRun], bench: str) -> StoredRun | None:
    """The most recently recorded run of ``bench``, or None."""
    selected = filter_runs(runs, bench=bench)
    return selected[-1] if selected else None


def latest_per_host(runs: list[StoredRun], bench: str) -> dict[str, StoredRun]:
    """Each host's most recent run of ``bench`` (the baseline candidates)."""
    latest: dict[str, StoredRun] = {}
    for run in filter_runs(runs, bench=bench):
        latest[run.host_id] = run  # runs arrive oldest-first
    return latest


def best_value(
    runs: list[StoredRun],
    bench: str,
    metric: str,
    host_id: str | None = None,
) -> tuple[float, str] | None:
    """The strongest recorded value of ``metric`` and where it came from.

    With a ``host_id``, that host's own history wins when it has any —
    a slower machine's past must not gate a faster machine, nor the
    reverse.  Returns ``(value, source)`` where source is
    ``"history:<host_id>"`` or ``"history:any-host"``; None with no
    history at all.
    """
    series = trajectory(runs, bench, metric)
    if host_id is not None:
        own = [(run, value) for run, value in series if run.host_id == host_id]
        if own:
            return max(value for _, value in own), f"history:{host_id}"
    if series:
        return max(value for _, value in series), "history:any-host"
    return None
