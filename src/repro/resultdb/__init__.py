"""Versioned result database: the repository's performance trajectory.

Every benchmark run can be appended as one immutable, provenance-
stamped record (:class:`ResultDB`, :class:`StoredRun`); the query layer
slices trajectories (:mod:`repro.resultdb.query`); ``repro report``
renders comparisons across versions/backends/hosts
(:mod:`repro.resultdb.report`); and ``repro check`` gates CI against
the stored history instead of hard-coded constants
(:mod:`repro.resultdb.gate` — the old constants live on as bootstrap
floors).  See ``docs/performance.md`` for the workflow.
"""

from repro.resultdb.gate import (
    BOOTSTRAP_BASELINES,
    DEFAULT_TOLERANCE,
    GatedMetric,
    GateResult,
    check_bench,
    check_metric,
    gated_metrics,
)
from repro.resultdb.provenance import host_fingerprint, provenance
from repro.resultdb.store import (
    DB_SCHEMA_VERSION,
    DEFAULT_DB_DIR,
    ResultDB,
    StoredRun,
    default_db_dir,
    extract_metrics,
)

__all__ = [
    "BOOTSTRAP_BASELINES",
    "DB_SCHEMA_VERSION",
    "DEFAULT_DB_DIR",
    "DEFAULT_TOLERANCE",
    "GateResult",
    "GatedMetric",
    "ResultDB",
    "StoredRun",
    "check_bench",
    "check_metric",
    "default_db_dir",
    "extract_metrics",
    "gated_metrics",
    "host_fingerprint",
    "provenance",
]
