"""Regression gate: compare a run against the stored trajectory.

``repro check`` is CI's perf floor.  Instead of a hard-coded constant
per benchmark, the gate derives its bar from history: the candidate
(latest recorded run of a bench) must not fall more than ``tolerance``
below the best value this host has ever recorded (any host's, when
this host has no history yet).  The previous CI constants survive as
**bootstrap baselines** — absolute floors that apply even with an
empty database, so a fresh clone is gated exactly as strictly as
before this subsystem existed, and more strictly as history accrues.

All gated metrics are ratios or rates where higher is better; a future
lower-is-better metric registers with ``direction="lower"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResultDBError
from repro.resultdb import query
from repro.resultdb.store import StoredRun

#: Default allowed fractional drop below the historical best.  Perf
#: numbers on shared CI runners are noisy; 15% holds the line against
#: real regressions without flaking on scheduler jitter.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class GatedMetric:
    """One metric the trajectory gates, with its bootstrap floor.

    ``floor`` is the pre-resultdb hard-coded CI constant: the absolute
    bar that applies regardless of history.  ``direction`` is
    ``"higher"`` (default) or ``"lower"``.  ``requires`` is an optional
    ``(metric, minimum)`` precondition recorded *in the run itself*:
    the bootstrap floor binds only when the candidate recorded that
    metric at or above the minimum — e.g. a parallel-speedup floor that
    is only meaningful on multicore hosts.  History comparison is
    unaffected (same-spec runs share the precondition metric anyway).
    """

    bench: str
    metric: str
    floor: float
    direction: str = "higher"
    requires: tuple[str, float] | None = None

    def floor_applies(self, candidate: StoredRun) -> bool:
        """Whether the bootstrap floor binds for ``candidate``."""
        if self.requires is None:
            return True
        name, minimum = self.requires
        value = candidate.metric(name)
        return value is not None and value >= minimum


#: The CI floors this subsystem replaces, now expressed as bootstrap
#: baselines: the native/compiled hot-path speedup, the native
#: closed-loop speedup, the thread-vs-process sweep throughput, and
#: the batched process backend's parity with serial (multi-core CI
#: hosts; a pool on one core can only approach serial from below).
BOOTSTRAP_BASELINES = (
    GatedMetric("bench_engine_hotpath", "speedup", 3.0),
    GatedMetric("bench_control_loop", "native_vs_python", 3.0),
    GatedMetric("bench_sweep_throughput", "thread_vs_process", 1.5),
    GatedMetric(
        "bench_sweep_throughput", "process_vs_serial", 1.0,
        requires=("cores", 2),
    ),
)


def bootstrap_for(bench: str, metric: str) -> GatedMetric | None:
    """The registered bootstrap baseline for (bench, metric), or None."""
    for gated in BOOTSTRAP_BASELINES:
        if gated.bench == bench and gated.metric == metric:
            return gated
    return None


def gated_metrics(bench: str) -> list[str]:
    """The metric names the gate checks by default on ``bench``."""
    return [g.metric for g in BOOTSTRAP_BASELINES if g.bench == bench]


@dataclass(frozen=True)
class GateResult:
    """The verdict on one (bench, metric) pair.

    ``baseline``/``source`` name the bar that was applied —
    ``history:<host>`` with tolerance, or ``bootstrap`` absolute.
    """

    bench: str
    metric: str
    passed: bool
    message: str
    value: float | None = None
    baseline: float | None = None
    source: str = "bootstrap"


def _beats(value: float, bar: float, direction: str) -> bool:
    """Whether ``value`` meets ``bar`` for the metric's direction."""
    return value >= bar if direction == "higher" else value <= bar


def check_metric(
    runs: list[StoredRun],
    candidate: StoredRun,
    metric: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Gate one metric of ``candidate`` against history + bootstrap.

    History excludes the candidate itself (a run can never be its own
    baseline) and prefers the candidate's host.  The bootstrap floor,
    when registered, applies unconditionally.
    """
    bench = candidate.bench
    value = candidate.metric(metric)
    if value is None:
        return GateResult(
            bench, metric, passed=False,
            message=f"candidate run {candidate.run_id} has no metric {metric!r}",
        )
    bootstrap = bootstrap_for(bench, metric)
    direction = bootstrap.direction if bootstrap else "higher"
    # Only measurements of the *same spec* (bench, backend, scale,
    # metric set) are one trajectory: a scale-1.0 history must not
    # gate a scale-0.05 smoke run, in either direction.
    history = [
        run
        for run in runs
        if run.run_id != candidate.run_id and run.spec_hash == candidate.spec_hash
    ]
    best = query.best_value(history, bench, metric, host_id=candidate.host_id)

    if best is not None:
        best_val, source = best
        slack = 1.0 - tolerance if direction == "higher" else 1.0 + tolerance
        bar = best_val * slack
        if not _beats(value, bar, direction):
            return GateResult(
                bench, metric, passed=False, value=value, baseline=best_val,
                source=source,
                message=(
                    f"{metric} = {value:g} regressed past {source} best "
                    f"{best_val:g} (tolerance {tolerance:.0%}, bar {bar:g})"
                ),
            )
    floor_binds = bootstrap is not None and bootstrap.floor_applies(candidate)
    if floor_binds and not _beats(value, bootstrap.floor, direction):
        return GateResult(
            bench, metric, passed=False, value=value, baseline=bootstrap.floor,
            source="bootstrap",
            message=(
                f"{metric} = {value:g} is below the bootstrap floor "
                f"{bootstrap.floor:g}"
            ),
        )
    if best is not None:
        baseline, source = best
    elif floor_binds:
        baseline, source = bootstrap.floor, "bootstrap"
    else:
        baseline, source = None, "unchecked"
    return GateResult(
        bench, metric, passed=True, value=value, baseline=baseline, source=source,
        message=f"{metric} = {value:g} ok vs {source} baseline "
        + (f"{baseline:g}" if baseline is not None else "(none)"),
    )


def check_bench(
    runs: list[StoredRun],
    bench: str,
    metrics: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[GateResult]:
    """Gate the latest run of ``bench`` on each of ``metrics``.

    Without explicit metrics, the registered gated metrics for the
    bench are checked; a bench with none registered gates every numeric
    metric of its candidate run against history alone.  Raises
    :class:`~repro.errors.ResultDBError` when the bench has no runs or
    nothing to check.
    """
    candidate = query.latest_run(runs, bench)
    if candidate is None:
        raise ResultDBError(
            f"no recorded runs of {bench!r}; run the benchmark or "
            f"`repro record` an artifact first"
        )
    if metrics is None:
        metrics = gated_metrics(bench)
        if not metrics:
            metrics = [m for m in sorted(candidate.metrics) if candidate.metric(m) is not None]
    if not metrics:
        raise ResultDBError(f"latest run of {bench!r} has no numeric metrics to gate")
    return [check_metric(runs, candidate, metric, tolerance) for metric in metrics]
