"""Comparison reports over the result database.

Builds the header/row pairs ``repro report`` renders — an overview of
every bench's trajectory, and a per-bench comparison across versions,
backends and hosts — and hands them to the shared renderers in
:mod:`repro.reporting.tables` (fixed-width text, CSV, HTML).
"""

from __future__ import annotations

from repro.errors import ResultDBError
from repro.reporting.tables import format_csv, format_html, format_table
from repro.resultdb import query
from repro.resultdb.gate import gated_metrics
from repro.resultdb.store import StoredRun

#: Renderer registry: name -> (headers, rows, title) -> str.
FORMATS = {
    "text": format_table,
    "csv": lambda headers, rows, title=None: format_csv(headers, rows),
    "html": format_html,
}


def _fmt(value: float) -> str:
    """Compact numeric cell: thousands separators, sensible precision."""
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:,.3f}".rstrip("0").rstrip(".")


def overview_rows(runs: list[StoredRun]) -> tuple[list[str], list[list[str]]]:
    """One row per bench: trajectory size, hosts, latest run context."""
    headers = ["Bench", "Runs", "Hosts", "Latest (UTC)", "Version", "Backend", "Gated metrics"]
    rows = []
    for bench in query.benches(runs):
        selected = query.filter_runs(runs, bench=bench)
        latest = selected[-1]
        rows.append(
            [
                bench,
                str(len(selected)),
                str(len({run.host_id for run in selected})),
                latest.recorded_utc,
                latest.version,
                latest.backend or "-",
                ", ".join(gated_metrics(bench)) or "-",
            ]
        )
    return headers, rows


def comparison_rows(
    runs: list[StoredRun],
    bench: str,
    metrics: list[str] | None = None,
) -> tuple[list[str], list[list[str]]]:
    """The cross-version/backend comparison table of one bench.

    One row per recorded run, oldest first; metric columns default to
    the bench's gated metrics, else every metric in its trajectory.
    Raises :class:`~repro.errors.ResultDBError` for an empty
    trajectory.
    """
    selected = query.filter_runs(runs, bench=bench)
    if not selected:
        raise ResultDBError(f"no recorded runs of {bench!r}")
    if metrics is None:
        metrics = gated_metrics(bench) or query.metric_names(selected)
    headers = ["Recorded (UTC)", "Version", "Host", "Backend", "Scale", *metrics]
    rows = []
    for run in selected:
        cells = [
            run.recorded_utc,
            run.version,
            run.host_id,
            run.backend or "-",
            f"{run.scale:g}" if run.scale is not None else "-",
        ]
        for metric in metrics:
            value = run.metric(metric)
            cells.append(_fmt(value) if value is not None else "-")
        rows.append(cells)
    return headers, rows


def render(
    headers: list[str],
    rows: list[list[str]],
    fmt: str = "text",
    title: str | None = None,
) -> str:
    """Render a report in ``fmt`` (``text``, ``csv`` or ``html``)."""
    renderer = FORMATS.get(fmt)
    if renderer is None:
        raise ResultDBError(f"unknown report format {fmt!r}; expected one of {sorted(FORMATS)}")
    return renderer(headers, rows, title=title)
