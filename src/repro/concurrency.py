"""Small shared concurrency primitives.

The free-threaded sweep engine puts thread-safe, size-bounded memo
fronts in several layers (the result cache, the trace store).  They
all want the same structure — a lock around an LRU-ordered dict —
so it lives here once instead of being hand-rolled per site.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class LockedLRU:
    """A thread-safe LRU mapping bounded to ``entries`` items.

    ``entries == 0`` disables the structure entirely: ``get`` always
    misses and ``put`` is a no-op, so callers can keep one unguarded
    code path for the memo-on and memo-off configurations.  Values are
    shared by reference — callers must treat them as read-only.
    """

    def __init__(self, entries: int) -> None:
        self.entries = max(0, entries)
        self._lock = threading.Lock()
        self._items: OrderedDict = OrderedDict()

    def get(self, key):
        """The value under ``key`` (refreshing recency), or None."""
        if not self.entries:
            return None
        with self._lock:
            value = self._items.get(key)
            if value is not None:
                self._items.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        """Insert ``key`` as most-recent, evicting the oldest overflow."""
        if not self.entries:
            return
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self.entries:
                self._items.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class SingleFlight:
    """At-most-one concurrent build per key; late callers share the result.

    The building blocks the sweep engine deduplicates — trace
    generation, profiling runs — are exactly the expensive work a
    cache exists to avoid, so a cache miss under concurrency must not
    fan out into N identical builds.  :meth:`run` arbitrates: the
    first caller for a key builds, everyone else waits on an event and
    re-checks the caller's cache.  A failed build wakes the waiters
    and lets the next one take over (the exception propagates to the
    failed builder only).
    """

    def __init__(self) -> None:
        #: Public: also guards the caller's cache structure (callers
        #: may take it for maintenance operations like clear()).
        self.lock = threading.Lock()
        self._pending: dict = {}

    def run(self, key, lookup, build, publish) -> tuple[object, bool]:
        """Return ``lookup()``'s value, building it at most once.

        ``lookup()`` and ``publish(value)`` execute under the internal
        lock — they must be quick, non-reentrant cache accesses
        returning/storing a non-None value.  ``build()`` executes
        outside the lock.  Returns ``(value, hit)`` where ``hit`` is
        True when the value came from ``lookup`` (possibly after
        waiting on another caller's build).
        """
        while True:
            with self.lock:
                value = lookup()
                if value is not None:
                    return value, True
                pending = self._pending.get(key)
                if pending is None:
                    pending = self._pending[key] = threading.Event()
                    break
            pending.wait()
        try:
            value = build()
        except BaseException:
            with self.lock:
                del self._pending[key]
            pending.set()
            raise
        with self.lock:
            publish(value)
            del self._pending[key]
        pending.set()
        return value, False
