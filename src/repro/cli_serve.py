"""The ``repro serve`` verb: run the sweep daemon in the foreground.

Split alongside :mod:`repro.cli_campaign` so :mod:`repro.cli` stays a
routing table.  The daemon itself lives in
:mod:`repro.execution.serve`; this module only parses flags, builds
the shared :class:`~repro.execution.jobs.JobManager`, and turns
Ctrl-C or SIGTERM into the repo-wide 130 exit after cancelling live
jobs.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import signal
import sys

from repro.errors import ExperimentError


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.execution.jobs import JobManager
    from repro.execution.serve import ReproServer

    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(levelname)s %(message)s",
    )
    try:
        # Validate the default worker knob the same way the orchestrator
        # would, so a typo fails at startup, not at first submission.
        from repro.experiments.executor import parse_workers

        if args.workers is not None:
            parse_workers(args.workers, "--workers")
        manager = JobManager(
            cache_dir=args.cache_dir,
            use_cache=False if args.no_cache else None,
            workers=args.workers,
        )
        server = ReproServer(host=args.host, port=args.port, manager=manager)
    except ExperimentError as exc:
        print(f"serve: error: {exc}", file=sys.stderr)
        return 2

    async def run() -> None:
        await server.start()
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            "(Ctrl-C to stop)",
            flush=True,
        )
        await server.serve_forever()

    # A daemon must die cleanly on SIGTERM (systemd stop, docker stop,
    # CI teardown) exactly like Ctrl-C: cancel live jobs, release
    # shared memory, exit 130.  Routing it through KeyboardInterrupt
    # shares the handler below.  Shells also start background children
    # with SIGINT ignored, so restore it explicitly.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        manager.shutdown()
        from repro.cli_campaign import _interrupt_cleanup

        _interrupt_cleanup()
        print("\nserve: interrupted", file=sys.stderr)
        return 130
    except OSError as exc:  # bind failures: address in use, bad host
        print(f"serve: error: {exc}", file=sys.stderr)
        return 2
    return 0


def register_serve_parser(sub) -> None:
    """Attach the ``serve`` subcommand to the top-level subparsers."""
    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP sweep daemon (submit jobs, stream events)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_p.add_argument(
        "--port", type=int, default=8023, help="bind port (0 = ephemeral)"
    )
    serve_p.add_argument(
        "--workers",
        default=None,
        help="default worker count for submitted jobs (integer or 'auto'); "
        "individual submissions may override per job",
    )
    serve_p.add_argument("--cache-dir", default=None, help="shared result cache")
    serve_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (also disables cross-job sharing)",
    )
    serve_p.add_argument(
        "--verbose", action="store_true", help="request/job logging"
    )
    serve_p.set_defaults(func=_cmd_serve)
