"""The 30-benchmark catalog (paper Table 5).

Each entry is a synthetic stand-in for one benchmark from MediaBench,
Olden or Spec2000, with phases tuned to the application's published
character (instruction mix, locality, branchiness, phase structure).
Simulation windows are scaled from the paper's 5 M–200 M instruction
windows down to 60 k–160 k so a pure-Python cycle simulator can sweep
all 30 applications; the control interval is scaled alongside (500
instructions) so every run still spans hundreds of control intervals —
the quantity that matters for Attack/Decay dynamics.  Aggregation
weights use the paper's instruction counts.

``epic`` is the paper's running case study: its floating-point unit is
idle except for two distinct bursts (Figure 3), and its load/store
behaviour in the middle of the run drives Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.uarch.isa import InstructionClass as IC
from repro.workloads.phases import (
    FP_COMPUTE_MIX,
    INT_COMPUTE_MIX,
    MEMORY_STREAM_MIX,
    POINTER_CHASE_MIX,
    Phase,
)
from repro.workloads.synthetic import SyntheticTrace

#: Scaled control-interval length used with this catalog (paper: 10,000
#: at 5M-200M windows; we keep hundreds of intervals per run).
CATALOG_INTERVAL_INSTRUCTIONS = 500


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: identity, weighting, and its phase script."""

    name: str
    suite: str
    datasets: str
    paper_window: str
    paper_minstructions: float  # weight for suite averages (Section 4)
    phases: tuple[Phase, ...]
    seed: int
    interval_instructions: int = CATALOG_INTERVAL_INSTRUCTIONS

    @property
    def sim_instructions(self) -> int:
        """Scaled simulation window length."""
        return sum(p.instructions for p in self.phases)

    def build_trace(self, scale: float = 1.0, seed_offset: int = 0) -> SyntheticTrace:
        """Instantiate the trace (optionally length-scaled for quick runs)."""
        phases = self.phases
        if scale != 1.0:
            if scale <= 0:
                raise WorkloadError("scale must be positive")
            phases = tuple(p.scaled(scale) for p in phases)
        return SyntheticTrace(list(phases), seed=self.seed + seed_offset)

    def phase_marks(self, scale: float = 1.0) -> list[tuple[str, int]]:
        """Per-phase ``(name, end_instruction)`` boundaries of the built trace.

        The boundaries match :meth:`build_trace` for the same ``scale``
        (cumulative over the scaled phase lengths), so per-phase metric
        attribution (:mod:`repro.metrics.phases`) lines up with the
        instruction stream exactly.
        """
        phases = self.phases
        if scale != 1.0:
            if scale <= 0:
                raise WorkloadError("scale must be positive")
            phases = tuple(p.scaled(scale) for p in phases)
        marks: list[tuple[str, int]] = []
        total = 0
        for phase in phases:
            total += phase.instructions
            marks.append((phase.name, total))
        return marks

    def trace_payload(self, scale: float = 1.0, seed_offset: int = 0) -> dict:
        """JSON-serialisable identity of the trace :meth:`build_trace` makes.

        Everything that determines the generated instruction stream —
        name, seed, scale and the full phase parameterisation — goes
        in, so the compiled-trace store can content-address it.
        """
        from dataclasses import fields

        def phase_dict(phase: Phase) -> dict:
            out = {}
            for f in fields(phase):
                value = getattr(phase, f.name)
                if f.name == "mix":
                    value = {int(k): v for k, v in value.items()}
                out[f.name] = value
            return out

        return {
            "benchmark": self.name,
            "seed": self.seed + seed_offset,
            "scale": scale,
            "phases": [phase_dict(p) for p in self.phases],
        }


def _mix(**overrides: float) -> dict[IC, float]:
    """Build a normalised mix from class-name keyword fractions."""
    raw = {IC[k.upper()]: v for k, v in overrides.items()}
    total = sum(raw.values())
    return {k: v / total for k, v in raw.items()}


def _spec(
    name: str,
    suite: str,
    datasets: str,
    paper_window: str,
    paper_m: float,
    phases: list[Phase],
    seed: int,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        suite=suite,
        datasets=datasets,
        paper_window=paper_window,
        paper_minstructions=paper_m,
        phases=tuple(phases),
        seed=seed,
    )


def _build_catalog() -> dict[str, BenchmarkSpec]:
    specs: list[BenchmarkSpec] = []

    # ----------------------------------------------------------------- Media
    specs.append(
        _spec(
            "adpcm", "MediaBench", "ref encode+decode", "6.6M + 5.5M", 12.1,
            [
                Phase(
                    "dsp", 80_000, INT_COMPUTE_MIX,
                    dep_density=0.60, dep_mean_distance=6.0,
                    working_set_kb=8, stride_fraction=0.85, code_footprint_kb=4,
                    branch_noise=0.01, loop_period=16,
                ),
            ],
            seed=101,
        )
    )
    # epic: the Figure 2/3 case study.  FP idle, burst, idle, burst, idle;
    # the second idle region carries the load/store utilization swings of
    # Figure 2 (alternating streaming and scattering sub-phases).
    epic_idle_mix = _mix(int_alu=0.46, load=0.28, store=0.10, branch=0.16)
    specs.append(
        _spec(
            "epic", "MediaBench", "ref encode+decode", "53M + 6.7M", 59.7,
            [
                Phase("filter_int", 42_000, epic_idle_mix,
                      working_set_kb=96, stride_fraction=0.75, branch_noise=0.03),
                Phase("fp_burst_1", 24_000, FP_COMPUTE_MIX,
                      dep_density=0.55, dep_mean_distance=8.0, working_set_kb=48, stride_fraction=0.8,
                      branch_noise=0.02),
                Phase("mem_swing_hi", 9_000, epic_idle_mix,
                      working_set_kb=512, stride_fraction=0.35, branch_noise=0.03),
                Phase("mem_swing_lo", 9_000, epic_idle_mix,
                      working_set_kb=24, stride_fraction=0.9, branch_noise=0.03),
                Phase("mem_swing_hi2", 9_000, epic_idle_mix,
                      working_set_kb=512, stride_fraction=0.35, branch_noise=0.03),
                Phase("mem_swing_lo2", 9_000, epic_idle_mix,
                      working_set_kb=24, stride_fraction=0.9, branch_noise=0.03),
                Phase("fp_burst_2", 22_000, FP_COMPUTE_MIX,
                      dep_density=0.55, dep_mean_distance=8.0, working_set_kb=48, stride_fraction=0.8,
                      branch_noise=0.02),
                Phase("writeback", 36_000, epic_idle_mix,
                      working_set_kb=128, stride_fraction=0.8, branch_noise=0.03),
            ],
            seed=102,
        )
    )
    specs.append(
        _spec(
            "jpeg", "MediaBench", "ref compress+decompress", "15.5M + 4.6M", 20.1,
            [
                Phase("dct", 50_000,
                      _mix(int_alu=0.44, int_mult=0.06, load=0.26, store=0.10, branch=0.14),
                      working_set_kb=128, stride_fraction=0.7, branch_noise=0.03),
                Phase("huffman", 40_000, INT_COMPUTE_MIX,
                      dep_density=0.65, dep_mean_distance=5.0,
                      working_set_kb=32, branch_noise=0.07, loop_period=6),
            ],
            seed=103,
        )
    )
    specs.append(
        _spec(
            "g721", "MediaBench", "ref encode+decode", "200M + 200M", 400.0,
            [
                Phase("codec", 100_000, INT_COMPUTE_MIX,
                      dep_density=0.65, dep_mean_distance=5.0,
                      working_set_kb=8, code_footprint_kb=4,
                      branch_noise=0.02, loop_period=12),
            ],
            seed=104,
        )
    )
    specs.append(
        _spec(
            "gsm", "MediaBench", "ref encode+decode", "200M + 74M", 274.0,
            [
                Phase("lpc", 100_000,
                      _mix(int_alu=0.50, int_mult=0.08, load=0.22, store=0.08, branch=0.12),
                      dep_density=0.50, dep_mean_distance=8.0,
                      working_set_kb=16, stride_fraction=0.85,
                      branch_noise=0.01, loop_period=32),
            ],
            seed=105,
        )
    )
    specs.append(
        _spec(
            "ghostscript", "MediaBench", "ref", "200M", 200.0,
            [
                Phase("interpret", 60_000, INT_COMPUTE_MIX,
                      working_set_kb=256, stride_fraction=0.4,
                      branch_noise=0.09, loop_period=5, code_footprint_kb=48),
                Phase("render", 40_000,
                      _mix(int_alu=0.42, load=0.28, store=0.14, branch=0.16),
                      working_set_kb=384, stride_fraction=0.7, branch_noise=0.05),
            ],
            seed=106,
        )
    )
    specs.append(
        _spec(
            "mesa_mb", "MediaBench", "ref mipmap+osdemo", "44.7M + 83.4M", 128.1,
            [
                Phase("geometry", 55_000, FP_COMPUTE_MIX,
                      working_set_kb=64, stride_fraction=0.7, branch_noise=0.03),
                Phase("raster", 45_000,
                      _mix(int_alu=0.36, fp_alu=0.12, load=0.28, store=0.12, branch=0.12),
                      working_set_kb=256, stride_fraction=0.8, branch_noise=0.04),
            ],
            seed=107,
        )
    )
    specs.append(
        _spec(
            "mpeg2", "MediaBench", "ref encode+decode", "171M + 200M", 371.0,
            [
                Phase("motion_est", 35_000,
                      _mix(int_alu=0.46, load=0.30, store=0.08, branch=0.16),
                      working_set_kb=256, stride_fraction=0.8, branch_noise=0.04),
                Phase("idct_fp", 30_000, FP_COMPUTE_MIX,
                      working_set_kb=64, stride_fraction=0.8, branch_noise=0.02),
                Phase("motion_comp", 30_000,
                      _mix(int_alu=0.40, load=0.30, store=0.16, branch=0.14),
                      working_set_kb=384, stride_fraction=0.85, branch_noise=0.04),
                Phase("idct_fp2", 25_000, FP_COMPUTE_MIX,
                      working_set_kb=64, stride_fraction=0.8, branch_noise=0.02),
            ],
            seed=108,
        )
    )
    specs.append(
        _spec(
            "pegwit", "MediaBench", "ref key+encrypt+decrypt", "12.3M + 32.4M + 17.7M", 62.4,
            [
                Phase("bignum", 80_000,
                      _mix(int_alu=0.46, int_mult=0.14, load=0.22, store=0.10, branch=0.08),
                      dep_density=0.55, dep_mean_distance=7.0,
                      working_set_kb=16, branch_noise=0.01, loop_period=32),
            ],
            seed=109,
        )
    )

    # ----------------------------------------------------------------- Olden
    specs.append(
        _spec(
            "bh", "Olden", "2048 1", "0-200M", 200.0,
            [
                Phase("tree_build", 25_000, POINTER_CHASE_MIX,
                      working_set_kb=1024, stride_fraction=0.2,
                      far_miss_fraction=0.04, branch_noise=0.06),
                Phase("force_calc", 75_000, FP_COMPUTE_MIX,
                      dep_density=0.55, dep_mean_distance=7.0, working_set_kb=512,
                      stride_fraction=0.4, far_miss_fraction=0.02,
                      branch_noise=0.03),
            ],
            seed=201,
        )
    )
    specs.append(
        _spec(
            "bisort", "Olden", "65000 0", "entire (127M)", 127.0,
            [
                Phase("sort", 80_000, POINTER_CHASE_MIX,
                      dep_density=0.8, dep_mean_distance=3.0,
                      working_set_kb=1536, stride_fraction=0.15,
                      far_miss_fraction=0.02, branch_noise=0.08, loop_period=4),
            ],
            seed=202,
        )
    )
    specs.append(
        _spec(
            "em3d", "Olden", "4000 10", "70M-119M (49M)", 49.0,
            [
                Phase("propagate", 80_000, MEMORY_STREAM_MIX,
                      dep_density=0.55, dep_mean_distance=7.0, working_set_kb=2048,
                      stride_fraction=0.5, far_miss_fraction=0.05,
                      branch_noise=0.02, loop_period=32),
            ],
            seed=203,
        )
    )
    specs.append(
        _spec(
            "health", "Olden", "4 1000 1", "80M-127M (47M)", 47.0,
            [
                Phase("simulate", 80_000, POINTER_CHASE_MIX,
                      dep_density=0.85, dep_mean_distance=2.5,
                      working_set_kb=2048, stride_fraction=0.1,
                      far_miss_fraction=0.04, branch_noise=0.07, loop_period=4),
            ],
            seed=204,
        )
    )
    specs.append(
        _spec(
            "mst", "Olden", "1024 1", "70M-170M (100M)", 100.0,
            [
                Phase("find_min", 80_000, POINTER_CHASE_MIX,
                      working_set_kb=768, stride_fraction=0.25,
                      far_miss_fraction=0.015, branch_noise=0.04, loop_period=8),
            ],
            seed=205,
        )
    )
    specs.append(
        _spec(
            "perimeter", "Olden", "12 1", "0-200M", 200.0,
            [
                Phase("quadtree", 80_000, POINTER_CHASE_MIX,
                      dep_density=0.75, working_set_kb=768,
                      stride_fraction=0.2, far_miss_fraction=0.02,
                      branch_noise=0.10, loop_period=3),
            ],
            seed=206,
        )
    )
    specs.append(
        _spec(
            "power", "Olden", "1 1", "0-200M", 200.0,
            [
                Phase("optimize", 100_000, FP_COMPUTE_MIX,
                      dep_density=0.55, dep_mean_distance=8.0,
                      working_set_kb=64, stride_fraction=0.6,
                      branch_noise=0.02, loop_period=16),
            ],
            seed=207,
        )
    )
    specs.append(
        _spec(
            "treeadd", "Olden", "20 1", "entire (189M)", 189.0,
            [
                Phase("recurse", 80_000,
                      _mix(int_alu=0.40, load=0.32, store=0.10, branch=0.18),
                      dep_density=0.8, dep_mean_distance=3.0,
                      working_set_kb=2048, stride_fraction=0.2,
                      far_miss_fraction=0.035, branch_noise=0.03, loop_period=4),
            ],
            seed=208,
        )
    )
    specs.append(
        _spec(
            "tsp", "Olden", "100000 1", "0-200M", 200.0,
            [
                Phase("tour_fp", 60_000, FP_COMPUTE_MIX,
                      working_set_kb=512, stride_fraction=0.35,
                      far_miss_fraction=0.03, branch_noise=0.04),
                Phase("tour_walk", 40_000, POINTER_CHASE_MIX,
                      working_set_kb=1024, stride_fraction=0.2,
                      far_miss_fraction=0.05, branch_noise=0.05),
            ],
            seed=209,
        )
    )
    specs.append(
        _spec(
            "voronoi", "Olden", "60000 1 0", "0-200M", 200.0,
            [
                Phase("delaunay", 80_000,
                      _mix(int_alu=0.26, fp_alu=0.20, fp_mult=0.08,
                           load=0.26, store=0.08, branch=0.12),
                      working_set_kb=1024, stride_fraction=0.3,
                      far_miss_fraction=0.04, branch_noise=0.06),
            ],
            seed=210,
        )
    )

    # ------------------------------------------------------------- Spec INT
    specs.append(
        _spec(
            "bzip2", "Spec2000 INT", "source 58", "1000M-1100M", 100.0,
            [
                Phase("compress", 100_000, INT_COMPUTE_MIX,
                      dep_density=0.60, dep_mean_distance=7.0, working_set_kb=512,
                      stride_fraction=0.6, far_miss_fraction=0.01,
                      branch_noise=0.06, loop_period=6),
            ],
            seed=301,
        )
    )
    # gcc: the memory-bound initialization phase the paper analyses (80 %
    # of instructions are memory references missing to main memory)
    # followed by a branchy, highly predictable compile phase (99 %).
    specs.append(
        _spec(
            "gcc", "Spec2000 INT", "166.i", "2000M-2100M", 100.0,
            [
                Phase("mem_init", 40_000,
                      _mix(int_alu=0.14, load=0.55, store=0.25, branch=0.06),
                      dep_density=0.5, working_set_kb=8192,
                      stride_fraction=0.55, far_miss_fraction=0.25,
                      branch_noise=0.002, loop_period=64),
                Phase("compile", 80_000, INT_COMPUTE_MIX,
                      working_set_kb=384, stride_fraction=0.4,
                      branch_noise=0.015, loop_period=8, code_footprint_kb=96),
            ],
            seed=302,
        )
    )
    specs.append(
        _spec(
            "gzip", "Spec2000 INT", "source 60", "1000M-1100M", 100.0,
            [
                Phase("deflate", 100_000, INT_COMPUTE_MIX,
                      dep_density=0.55, dep_mean_distance=7.0,
                      working_set_kb=256, stride_fraction=0.65,
                      branch_noise=0.05, loop_period=6),
            ],
            seed=303,
        )
    )
    specs.append(
        _spec(
            "mcf", "Spec2000 INT", "ref", "1000M-1100M", 100.0,
            [
                Phase("simplex", 100_000, POINTER_CHASE_MIX,
                      dep_density=0.80, dep_mean_distance=3.0,
                      working_set_kb=6144, stride_fraction=0.1,
                      far_miss_fraction=0.09, branch_noise=0.30, loop_period=4),
            ],
            seed=304,
        )
    )
    specs.append(
        _spec(
            "parser", "Spec2000 INT", "ref", "1000M-1100M", 100.0,
            [
                Phase("parse", 100_000, INT_COMPUTE_MIX,
                      working_set_kb=128, stride_fraction=0.35,
                      branch_noise=0.11, loop_period=3, code_footprint_kb=64),
            ],
            seed=305,
        )
    )
    specs.append(
        _spec(
            "vortex", "Spec2000 INT", "ref", "1000M-1100M", 100.0,
            [
                Phase("oodb", 100_000,
                      _mix(int_alu=0.42, load=0.28, store=0.14, branch=0.16),
                      working_set_kb=1024, stride_fraction=0.45,
                      far_miss_fraction=0.02, branch_noise=0.04,
                      code_footprint_kb=128),
            ],
            seed=306,
        )
    )
    specs.append(
        _spec(
            "vpr", "Spec2000 INT", "ref", "1000M-1100M", 100.0,
            [
                Phase("place", 55_000,
                      _mix(int_alu=0.36, fp_alu=0.10, load=0.26, store=0.10, branch=0.18),
                      working_set_kb=512, stride_fraction=0.35,
                      branch_noise=0.08, loop_period=5),
                Phase("route", 45_000, POINTER_CHASE_MIX,
                      working_set_kb=1024, stride_fraction=0.3,
                      far_miss_fraction=0.03, branch_noise=0.06),
            ],
            seed=307,
        )
    )

    # -------------------------------------------------------------- Spec FP
    specs.append(
        _spec(
            "art", "Spec2000 FP", "ref", "300M-400M", 100.0,
            [
                Phase("train_f1", 100_000, MEMORY_STREAM_MIX,
                      dep_density=0.48, dep_mean_distance=9.0, working_set_kb=3072,
                      stride_fraction=0.75, far_miss_fraction=0.05,
                      branch_noise=0.01, loop_period=64),
            ],
            seed=401,
        )
    )
    specs.append(
        _spec(
            "equake", "Spec2000 FP", "ref", "1000M-1100M", 100.0,
            [
                Phase("smvp", 100_000,
                      _mix(int_alu=0.20, fp_alu=0.26, fp_mult=0.10,
                           load=0.30, store=0.08, branch=0.06),
                      dep_density=0.50, dep_mean_distance=9.0, working_set_kb=2048,
                      stride_fraction=0.55, far_miss_fraction=0.04,
                      branch_noise=0.02, loop_period=32),
            ],
            seed=402,
        )
    )
    specs.append(
        _spec(
            "mesa_fp", "Spec2000 FP", "ref", "1000M-1100M", 100.0,
            [
                Phase("shade", 100_000, FP_COMPUTE_MIX,
                      dep_density=0.55, dep_mean_distance=8.0, working_set_kb=128,
                      stride_fraction=0.7, branch_noise=0.02, loop_period=16),
            ],
            seed=403,
        )
    )
    specs.append(
        _spec(
            "swim", "Spec2000 FP", "ref", "1000M-1100M", 100.0,
            [
                Phase("stencil", 100_000,
                      _mix(int_alu=0.16, fp_alu=0.30, fp_mult=0.12,
                           load=0.30, store=0.10, branch=0.02),
                      dep_density=0.45, dep_mean_distance=10.0, working_set_kb=6144,
                      stride_fraction=0.9, stride_bytes=8,
                      far_miss_fraction=0.06, branch_noise=0.005,
                      loop_period=128),
            ],
            seed=404,
        )
    )

    return {spec.name: spec for spec in specs}


#: All thirty benchmarks, keyed by name.
BENCHMARKS: dict[str, BenchmarkSpec] = _build_catalog()

#: Runtime registrations beyond Table 5: the derived scenario catalog
#: (:mod:`repro.workloads.derived`, loaded lazily) plus anything the
#: session registers (imported external traces, ad-hoc compositions).
_EXTRA_BENCHMARKS: dict[str, BenchmarkSpec] = {}
_derived_loaded = False


def _load_derived() -> None:
    """Populate the registry with the derived catalog (idempotent).

    The loaded flag is only set once the import *succeeds*: a failed
    load (an error in a derived composition) surfaces on every call
    rather than leaving the registry silently partial.  Re-entrant
    calls during the import itself are satisfied from ``sys.modules``.
    """
    global _derived_loaded
    if not _derived_loaded:
        # Imported for its registration side effect; the module calls
        # register_benchmark for every derived scenario.
        import repro.workloads.derived  # noqa: F401

        _derived_loaded = True


def register_benchmark(spec: BenchmarkSpec, replace: bool = False) -> BenchmarkSpec:
    """Register a runnable workload under its name.

    Anything with the :class:`BenchmarkSpec` surface (``build_trace``,
    ``trace_payload``, ``phase_marks``, ``interval_instructions``)
    qualifies — composed specs from :mod:`repro.workloads.algebra`,
    imported external traces (:mod:`repro.uarch.etf`).  Table 5 and
    derived-catalog names are reserved; re-registering another name
    requires ``replace``.
    """
    name = spec.name
    if name in BENCHMARKS:
        raise WorkloadError(f"cannot shadow catalog benchmark {name!r}")
    # Resolve the derived catalog first so its names are claimed before
    # any runtime registration can squat on them (during the derived
    # import itself this is satisfied from sys.modules and the in-flight
    # entries land below, marked replaceable).
    _load_derived()
    if name in _EXTRA_BENCHMARKS and not replace:
        raise WorkloadError(f"benchmark {name!r} is already registered")
    _EXTRA_BENCHMARKS[name] = spec
    return spec


def all_benchmarks() -> dict[str, BenchmarkSpec]:
    """Every runnable workload: catalog, derived, and registered."""
    _load_derived()
    return {**BENCHMARKS, **_EXTRA_BENCHMARKS}


def runtime_benchmark_snapshot() -> dict[str, BenchmarkSpec]:
    """The workloads registered at runtime (derived catalog excluded).

    The Table 5 catalog and the derived catalog re-materialise from
    imports in any process; only these entries are process-local state
    a spawn-context orchestrator worker would otherwise miss.
    """
    _load_derived()
    from repro.workloads.derived import DERIVED_BENCHMARKS

    return {
        name: spec
        for name, spec in _EXTRA_BENCHMARKS.items()
        if name not in DERIVED_BENCHMARKS
    }


def restore_runtime_benchmarks(snapshot: dict[str, BenchmarkSpec]) -> None:
    """Re-register a :func:`runtime_benchmark_snapshot` in this process.

    ``replace=True`` keeps the restore idempotent under fork (where the
    entries are inherited and already present).
    """
    for spec in snapshot.values():
        register_benchmark(spec, replace=True)


def is_known_benchmark(name: str) -> bool:
    """Whether ``name`` resolves to a runnable workload."""
    if name in BENCHMARKS:
        return True
    _load_derived()
    return name in _EXTRA_BENCHMARKS


def benchmark_names(suite: str | None = None) -> list[str]:
    """Names of the Table 5 benchmarks, optionally filtered by suite prefix.

    Derived and registered workloads are intentionally excluded — the
    paper's tables and suite averages cover the catalog only.  Use
    :func:`all_benchmarks` for the full runnable namespace.
    """
    if suite is None:
        return list(BENCHMARKS)
    return [n for n, s in BENCHMARKS.items() if s.suite.startswith(suite)]


def get_catalog_benchmark(name: str) -> BenchmarkSpec:
    """Look up a Table 5 entry only (no derived/registered names)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up any runnable workload; raises :class:`WorkloadError` if unknown.

    Resolution order: the Table 5 catalog, then the derived scenario
    catalog and runtime registrations (:func:`register_benchmark`).
    """
    spec = BENCHMARKS.get(name)
    if spec is not None:
        return spec
    _load_derived()
    spec = _EXTRA_BENCHMARKS.get(name)
    if spec is not None:
        return spec
    known = ", ".join(sorted(BENCHMARKS) + sorted(_EXTRA_BENCHMARKS))
    raise WorkloadError(f"unknown benchmark {name!r}; known: {known}") from None
