"""Composition algebra over benchmark phase scripts.

The 30 catalog entries are points; this module supplies the operators
that turn them into a space.  Every operator consumes and produces
:class:`~repro.workloads.catalog.BenchmarkSpec` values, so a composed
workload is indistinguishable from a hand-written catalog entry
downstream: it builds the same seeded
:class:`~repro.workloads.synthetic.SyntheticTrace`, content-addresses
into the same compiled-trace store (its full phase parameterisation is
the identity, see :meth:`BenchmarkSpec.trace_payload`), and runs
through all three byte-identical core paths.

Operators
---------
``concat(a, b, ...)``
    Play the operands' phase scripts back to back.
``interleave(a, b, quantum)``
    Alternate ``quantum``-instruction slices of the operands' scripts —
    the phase-thrash generator (rapid behaviour changes are what stress
    the Attack/Decay controller's attack mode).
``repeat(spec, times)``
    Loop one script, multiplying its phase transitions.
``scale(spec, factor)``
    Stretch or compress every phase's dynamic length.
``perturb(spec, seed, strength)``
    Deterministically jitter the statistical knobs of every phase
    (locality, dependency structure, branchiness) within their legal
    ranges — cheap workload families from one ancestor.
``splice(spec, insert, at)``
    Cut ``spec``'s script at an instruction offset (splitting the
    phase under the cut) and insert another script there — isolated
    bursts in an otherwise stationary region, the Figure 3 shape.

All operators validate their arguments and raise
:class:`~repro.errors.WorkloadError` on misuse.  Composition is pure:
no operator mutates its operands.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from dataclasses import replace

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.catalog import CATALOG_INTERVAL_INSTRUCTIONS, BenchmarkSpec
from repro.workloads.phases import Phase

__all__ = [
    "concat",
    "interleave",
    "repeat",
    "scale",
    "perturb",
    "splice",
    "split_phase",
    "derived_spec",
]

#: Derived specs carry this suite label so listings can tell them from
#: the hand-tuned Table 5 entries.
DERIVED_SUITE = "Derived"


def derived_spec(
    name: str,
    phases: list[Phase] | tuple[Phase, ...],
    seed: int,
    describe: str = "",
    interval_instructions: int = CATALOG_INTERVAL_INSTRUCTIONS,
) -> BenchmarkSpec:
    """Package a phase script as a runnable derived benchmark.

    The paper-identity fields (window, weight) are synthesised from the
    script itself; ``describe`` records the composition for listings.
    """
    if not phases:
        raise WorkloadError(f"{name}: a derived benchmark needs at least one phase")
    total = sum(p.instructions for p in phases)
    return BenchmarkSpec(
        name=name,
        suite=DERIVED_SUITE,
        datasets=describe or "composed",
        paper_window="-",
        paper_minstructions=total / 1e6,
        phases=tuple(phases),
        seed=seed,
        interval_instructions=interval_instructions,
    )


def _rename(phase: Phase, label: str) -> Phase:
    """A copy of ``phase`` carrying a composition-scoped name."""
    return replace(phase, name=f"{label}.{phase.name}")


def concat(*specs: BenchmarkSpec, name: str | None = None) -> BenchmarkSpec:
    """Play the operands back to back.

    >>> from repro.workloads.catalog import get_benchmark
    >>> both = concat(get_benchmark("adpcm"), get_benchmark("gsm"))
    >>> both.sim_instructions == (
    ...     get_benchmark("adpcm").sim_instructions
    ...     + get_benchmark("gsm").sim_instructions
    ... )
    True
    """
    if len(specs) < 2:
        raise WorkloadError("concat needs at least two operands")
    phases: list[Phase] = []
    for spec in specs:
        phases.extend(_rename(p, spec.name) for p in spec.phases)
    label = name or "+".join(s.name for s in specs)
    seed = sum(s.seed for s in specs) % (1 << 30)
    return derived_spec(
        label, phases, seed, describe=f"concat({', '.join(s.name for s in specs)})"
    )


def repeat(spec: BenchmarkSpec, times: int, name: str | None = None) -> BenchmarkSpec:
    """Loop one script ``times`` times (multiplying its transitions)."""
    if times < 1:
        raise WorkloadError(f"repeat: times must be >= 1, got {times}")
    phases: list[Phase] = []
    for i in range(times):
        phases.extend(_rename(p, f"r{i}") for p in spec.phases)
    return derived_spec(
        name or f"{spec.name}x{times}",
        phases,
        spec.seed,
        describe=f"repeat({spec.name}, {times})",
    )


def scale(
    spec: BenchmarkSpec, factor: float, name: str | None = None
) -> BenchmarkSpec:
    """Stretch (or compress) every phase's dynamic length by ``factor``."""
    if factor <= 0:
        raise WorkloadError(f"scale: factor must be positive, got {factor}")
    phases = [p.scaled(factor) for p in spec.phases]
    return derived_spec(
        name or f"{spec.name}*{factor:g}",
        phases,
        spec.seed,
        describe=f"scale({spec.name}, {factor:g})",
    )


def split_phase(phase: Phase, at: int) -> tuple[Phase, Phase]:
    """Cut one phase into a head of ``at`` instructions and the tail.

    Both halves keep the phase's stationary statistics; only the
    lengths change.

    >>> from repro.workloads.phases import INT_COMPUTE_MIX
    >>> head, tail = split_phase(Phase("p", 100, INT_COMPUTE_MIX), 30)
    >>> head.instructions, tail.instructions
    (30, 70)
    """
    if not 0 < at < phase.instructions:
        raise WorkloadError(
            f"split_phase: cut {at} outside (0, {phase.instructions})"
        )
    return (
        replace(phase, instructions=at),
        replace(phase, instructions=phase.instructions - at),
    )


def _take(phases: list[Phase], budget: int) -> tuple[list[Phase], list[Phase]]:
    """Split a script at an instruction ``budget`` (splitting one phase)."""
    taken: list[Phase] = []
    rest = list(phases)
    while budget > 0 and rest:
        head = rest[0]
        if head.instructions <= budget:
            taken.append(head)
            budget -= head.instructions
            rest.pop(0)
        else:
            first, second = split_phase(head, budget)
            taken.append(first)
            rest[0] = second
            budget = 0
    return taken, rest


def interleave(
    a: BenchmarkSpec,
    b: BenchmarkSpec,
    quantum: int = 4000,
    name: str | None = None,
) -> BenchmarkSpec:
    """Alternate ``quantum``-instruction slices of the two scripts.

    Both scripts run to completion: when one side exhausts, the other's
    remainder plays out uninterrupted.  The result's length is the sum
    of the operands' lengths; what changes is the *rate of phase
    change*, which is exactly the quantity the Attack/Decay controller
    reacts to.
    """
    if quantum < 1:
        raise WorkloadError(f"interleave: quantum must be >= 1, got {quantum}")
    left = [_rename(p, a.name) for p in a.phases]
    right = [_rename(p, b.name) for p in b.phases]
    phases: list[Phase] = []
    turn_left = True
    while left or right:
        source = left if (turn_left and left) or not right else right
        taken, rest = _take(source, quantum)
        phases.extend(taken)
        if source is left:
            left = rest
        else:
            right = rest
        turn_left = not turn_left
    return derived_spec(
        name or f"{a.name}~{b.name}",
        phases,
        (a.seed * 31 + b.seed) % (1 << 30),
        describe=f"interleave({a.name}, {b.name}, q={quantum})",
    )


def splice(
    spec: BenchmarkSpec,
    insert: BenchmarkSpec,
    at: int,
    name: str | None = None,
) -> BenchmarkSpec:
    """Insert ``insert``'s script at instruction offset ``at`` of ``spec``."""
    total = spec.sim_instructions
    if not 0 < at < total:
        raise WorkloadError(f"splice: offset {at} outside (0, {total})")
    head, tail = _take([_rename(p, spec.name) for p in spec.phases], at)
    middle = [_rename(p, insert.name) for p in insert.phases]
    return derived_spec(
        name or f"{spec.name}^{insert.name}",
        head + middle + tail,
        (spec.seed * 17 + insert.seed) % (1 << 30),
        describe=f"splice({spec.name}, {insert.name}, at={at})",
    )


#: Phase knobs perturb() jitters, with their legal ranges.  Fractions
#: move additively, footprints/distances multiplicatively.
_PERTURB_FRACTIONS = (
    ("dep_density", 0.0, 1.0),
    ("stride_fraction", 0.0, 1.0),
    ("far_miss_fraction", 0.0, 0.5),
    ("branch_noise", 0.0, 0.5),
    ("branch_taken_prob", 0.0, 1.0),
)
_PERTURB_SCALES = (
    ("dep_mean_distance", 1.0, 64.0),
    ("working_set_kb", 1, 8192),
    ("loop_dwell_instructions", 16, 1_000_000),
)


def perturb(
    spec: BenchmarkSpec,
    seed: int,
    strength: float = 0.25,
    name: str | None = None,
) -> BenchmarkSpec:
    """Deterministically jitter every phase's statistical knobs.

    ``strength`` sets the jitter amplitude: fraction-valued knobs move
    by up to ``±strength/2`` additively, footprint/distance knobs by a
    factor in ``[1/(1+strength), 1+strength]``.  All values are clipped
    to their legal ranges, so the result is always a valid workload.
    The same (spec, seed, strength) triple always yields the same
    perturbation.
    """
    if strength <= 0:
        raise WorkloadError(f"perturb: strength must be positive, got {strength}")
    rng = np.random.default_rng(seed)
    phases: list[Phase] = []
    numeric = {f.name for f in dataclass_fields(Phase)}
    for phase in spec.phases:
        changes: dict[str, float | int] = {}
        for field_name, lo, hi in _PERTURB_FRACTIONS:
            assert field_name in numeric
            value = getattr(phase, field_name)
            value += float(rng.uniform(-strength / 2, strength / 2))
            changes[field_name] = min(hi, max(lo, value))
        for field_name, lo, hi in _PERTURB_SCALES:
            value = getattr(phase, field_name)
            factor = float(rng.uniform(1.0 / (1.0 + strength), 1.0 + strength))
            scaled_value = value * factor
            if isinstance(value, int):
                scaled_value = round(scaled_value)
            changes[field_name] = min(hi, max(lo, scaled_value))
        phases.append(replace(phase, **changes))
    return derived_spec(
        name or f"{spec.name}?{seed}",
        phases,
        (spec.seed + seed * 7919) % (1 << 30),
        describe=f"perturb({spec.name}, seed={seed}, strength={strength:g})",
    )
