"""Phase behaviour models for synthetic workloads.

A workload is a sequence of :class:`Phase` objects.  Each phase holds a
stationary statistical description of the dynamic instruction stream;
phase *changes* are what exercise the Attack/Decay controller's attack
mode, and long stationary phases exercise its decay mode (paper
Figures 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import WorkloadError
from repro.uarch.isa import InstructionClass

#: Baseline instruction mixes reused across the catalog.  Values are
#: fractions of the dynamic stream and must sum to 1.
INT_COMPUTE_MIX: Mapping[InstructionClass, float] = MappingProxyType(
    {
        InstructionClass.INT_ALU: 0.52,
        InstructionClass.INT_MULT: 0.02,
        InstructionClass.LOAD: 0.22,
        InstructionClass.STORE: 0.09,
        InstructionClass.BRANCH: 0.15,
    }
)

FP_COMPUTE_MIX: Mapping[InstructionClass, float] = MappingProxyType(
    {
        InstructionClass.INT_ALU: 0.22,
        InstructionClass.FP_ALU: 0.28,
        InstructionClass.FP_MULT: 0.12,
        InstructionClass.LOAD: 0.24,
        InstructionClass.STORE: 0.08,
        InstructionClass.BRANCH: 0.06,
    }
)

POINTER_CHASE_MIX: Mapping[InstructionClass, float] = MappingProxyType(
    {
        InstructionClass.INT_ALU: 0.38,
        InstructionClass.LOAD: 0.34,
        InstructionClass.STORE: 0.12,
        InstructionClass.BRANCH: 0.16,
    }
)

MEMORY_STREAM_MIX: Mapping[InstructionClass, float] = MappingProxyType(
    {
        InstructionClass.INT_ALU: 0.26,
        InstructionClass.FP_ALU: 0.18,
        InstructionClass.FP_MULT: 0.06,
        InstructionClass.LOAD: 0.32,
        InstructionClass.STORE: 0.12,
        InstructionClass.BRANCH: 0.06,
    }
)


@dataclass(frozen=True)
class Phase:
    """A stationary region of a workload's execution.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"fp_burst"``).
    instructions:
        Dynamic length of the phase.
    mix:
        Instruction-class fractions (must sum to 1 within 1e-6).
    dep_density:
        Probability an instruction's first operand depends on an
        earlier instruction (higher → longer dependency chains →
        lower ILP).
    dep_mean_distance:
        Mean dependency distance in dynamic instructions (smaller →
        tighter chains).
    working_set_kb:
        Span of the data region touched by loads/stores; determines
        whether the stream fits L1 (64 KB), L2 (1 MB) or spills.
    stride_fraction:
        Fraction of memory accesses that stream sequentially (spatial
        locality); the rest scatter uniformly over the working set.
    stride_bytes:
        Step of the streaming accesses.
    far_miss_fraction:
        Fraction of memory accesses sent to a very large far region,
        modelling pointer chasing that misses all the way to memory.
    code_footprint_kb:
        Span of the instruction region (drives L1I behaviour).
    loop_body_bytes:
        Size of the inner loop body the PC stream cycles within; small
        bodies mean heavy branch-site reuse (trainable predictor) and
        L1I hits.
    loop_dwell_instructions:
        How long execution stays in one loop body before moving to the
        next region of the footprint (loop-nest behaviour: dwell in an
        inner loop, then advance).
    branch_taken_prob:
        Unused positions in the deterministic loop pattern resolve
        taken with this probability.
    branch_noise:
        Fraction of branches with random outcomes — the knob for the
        achievable prediction accuracy (≈ 1 - noise/2).
    loop_period:
        The deterministic branch pattern: every ``loop_period``-th
        branch at a site falls through (a loop exit).  Periods within
        the predictor's 10-bit history are learnable.
    """

    name: str
    instructions: int
    mix: Mapping[InstructionClass, float]
    dep_density: float = 0.58
    dep_mean_distance: float = 8.0
    working_set_kb: int = 32
    stride_fraction: float = 0.55
    stride_bytes: int = 8
    far_miss_fraction: float = 0.0
    code_footprint_kb: int = 12
    loop_body_bytes: int = 256
    loop_dwell_instructions: int = 2000
    branch_taken_prob: float = 0.60
    branch_noise: float = 0.04
    loop_period: int = 8

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise WorkloadError(f"{self.name}: instructions must be positive")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"{self.name}: mix sums to {total}, expected 1.0")
        if any(v < 0 for v in self.mix.values()):
            raise WorkloadError(f"{self.name}: negative mix fraction")
        for fraction_field in (
            "dep_density",
            "stride_fraction",
            "far_miss_fraction",
            "branch_taken_prob",
            "branch_noise",
        ):
            value = getattr(self, fraction_field)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {fraction_field} not in [0, 1]")
        if self.dep_mean_distance < 1.0:
            raise WorkloadError(f"{self.name}: dep_mean_distance must be >= 1")
        if self.working_set_kb < 1 or self.code_footprint_kb < 1:
            raise WorkloadError(f"{self.name}: footprints must be >= 1 KB")
        if self.stride_bytes < 1:
            raise WorkloadError(f"{self.name}: stride_bytes must be >= 1")
        if self.loop_period < 2:
            raise WorkloadError(f"{self.name}: loop_period must be >= 2")
        if self.loop_body_bytes < 16:
            raise WorkloadError(f"{self.name}: loop_body_bytes must be >= 16")
        if self.loop_dwell_instructions < 1:
            raise WorkloadError(f"{self.name}: loop_dwell_instructions must be >= 1")

    def scaled(self, factor: float) -> "Phase":
        """A copy with the instruction count scaled by ``factor``."""
        from dataclasses import replace

        return replace(self, instructions=max(1, round(self.instructions * factor)))

    def __getstate__(self):
        # The shared mix constants are MappingProxyType, which cannot
        # pickle; materialise a plain dict so phases (and therefore
        # BenchmarkSpecs) cross process boundaries — the orchestrator
        # ships runtime-registered workloads to spawn-context workers.
        state = dict(self.__dict__)
        state["mix"] = dict(self.mix)
        return state


def total_instructions(phases: list[Phase]) -> int:
    """Sum of phase lengths."""
    return sum(p.instructions for p in phases)
