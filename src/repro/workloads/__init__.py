"""Workload substrate: synthetic stand-ins for the paper's benchmarks.

The paper evaluates 30 applications from MediaBench, Olden and Spec2000
(Table 5) as Alpha binaries under SimpleScalar.  Offline we replace
each with a deterministic, seeded *synthetic workload model* whose
instruction stream reproduces the benchmark's published character —
instruction mix, dependency structure, cache/branch behaviour and phase
structure — through the real predictor, caches and pipeline (DESIGN.md
substitution #1).
"""

from repro.workloads.catalog import (
    BENCHMARKS,
    BenchmarkSpec,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    is_known_benchmark,
    register_benchmark,
)
from repro.workloads.phases import Phase
from repro.workloads.synthetic import SyntheticTrace

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "Phase",
    "SyntheticTrace",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
    "is_known_benchmark",
    "register_benchmark",
]
