"""The derived scenario catalog: stressors composed with the algebra.

Importing this module registers ~24 derived benchmarks (five families)
with the workload registry, so ``get_benchmark`` resolves them and they
run anywhere a catalog entry runs — ``python -m repro sweep``, the
orchestrator, the compiled-trace store, all three core paths.

Families
--------
``memory_wall``
    Sustained or alternating main-memory pressure: big working sets,
    far misses, low stride locality.  Stresses the load/store domain's
    deviation signal and the controller's endstop behaviour.
``branch_storm``
    Prediction-hostile streams and predictable/hostile alternation.
    Misprediction stalls starve the issue queues, driving frequencies
    down; recovery exercises attack mode.
``phase_thrash``
    Rapid behaviour alternation via ``interleave`` — phase changes per
    unit time far above any Table 5 entry, the controller's worst case.
``idle_burst``
    The Figure 3 shape generalised: long unit-idle regions with short
    bursts spliced in (floating-point into integer codecs and vice
    versa), exercising decay-to-endstop and re-attack.
``adversarial``
    Attack/Decay-specific traps: transitions aligned to the control
    interval, sawtooth demand at the regulator's slew rate scale,
    perturbed near-stationary noise floors.

All entries are deterministic: composition parameters and seeds are
fixed here, and the resulting phase scripts content-address into the
compiled-trace store exactly like hand-written entries.
"""

from __future__ import annotations

from repro.workloads import algebra
from repro.workloads.catalog import (
    BenchmarkSpec,
    get_catalog_benchmark,
    register_benchmark,
)

__all__ = ["DERIVED_BENCHMARKS", "derived_names"]


def _build_derived() -> dict[str, BenchmarkSpec]:
    a = algebra
    g = get_catalog_benchmark
    specs: list[BenchmarkSpec] = []

    # ------------------------------------------------------------ memory wall
    # Sustained pressure: pointer-chasing simplex joined to streaming FP.
    specs.append(
        a.concat(
            a.scale(g("mcf"), 0.5), a.scale(g("art"), 0.5), name="memory_wall"
        )
    )
    # Alternating pressure: the L2-resident/streaming boundary every 3k.
    specs.append(
        a.interleave(
            a.scale(g("mcf"), 0.4),
            a.scale(g("swim"), 0.4),
            quantum=3000,
            name="memory_wall_thrash",
        )
    )
    # gcc's paper-analysed memory-bound init spliced into a codec.
    specs.append(
        a.splice(g("gsm"), a.scale(g("gcc"), 0.25), at=50_000, name="memory_wall_burst")
    )
    # em3d pushed toward uniform far misses.
    specs.append(
        a.perturb(g("em3d"), seed=11, strength=0.45, name="far_miss_storm")
    )
    specs.append(
        a.repeat(a.scale(g("health"), 0.35), 3, name="memory_wall_chase")
    )

    # ----------------------------------------------------------- branch storm
    # Prediction-hostile from two directions at once.
    specs.append(
        a.interleave(
            a.scale(g("parser"), 0.5),
            a.scale(g("mcf"), 0.5),
            quantum=2000,
            name="branch_storm",
        )
    )
    # Predictable -> hostile -> predictable: accuracy whiplash.
    specs.append(
        a.concat(
            a.scale(g("gsm"), 0.3),
            a.scale(g("parser"), 0.4),
            a.scale(g("gsm"), 0.3),
            name="branch_flip",
        )
    )
    specs.append(
        a.perturb(g("perimeter"), seed=23, strength=0.5, name="branch_storm_wild")
    )
    specs.append(
        a.repeat(a.scale(g("vpr"), 0.4), 2, name="branch_storm_cycle")
    )

    # ----------------------------------------------------------- phase thrash
    # Integer DSP against FP stencil at 1k-instruction quanta: phase
    # changes two orders of magnitude denser than any catalog entry.
    specs.append(
        a.interleave(
            a.scale(g("adpcm"), 0.5),
            a.scale(g("swim"), 0.4),
            quantum=1000,
            name="phase_thrash",
        )
    )
    # The Figure 2/3 case study looped at quarter length.
    specs.append(
        a.repeat(a.scale(g("epic"), 0.25), 4, name="phase_thrash_epic")
    )
    # One pass through all four suite characters.
    specs.append(
        a.concat(
            a.scale(g("adpcm"), 0.3),
            a.scale(g("art"), 0.25),
            a.scale(g("parser"), 0.25),
            a.scale(g("swim"), 0.25),
            name="phase_tour",
        )
    )
    specs.append(
        a.interleave(
            a.scale(g("epic"), 0.4),
            a.scale(g("mcf"), 0.4),
            quantum=2500,
            name="phase_thrash_mem",
        )
    )

    # ------------------------------------------------------------- idle burst
    # Short FP bursts inside a long integer codec: FP domain sits at
    # the endstop, must re-attack twice.
    mesa_burst = a.scale(g("mesa_fp"), 0.12)
    specs.append(
        a.splice(
            a.splice(g("g721"), mesa_burst, at=30_000),
            mesa_burst,
            at=90_000,
            name="idle_burst_fp",
        )
    )
    # Short pointer-chase bursts inside straight-line crypto.
    specs.append(
        a.splice(
            g("pegwit"), a.scale(g("mst"), 0.15), at=40_000, name="idle_burst_ls"
        )
    )
    # A single burst very late in the run (decay has fully converged).
    specs.append(
        a.splice(
            g("gzip"), a.scale(g("equake"), 0.15), at=85_000, name="idle_burst_late"
        )
    )
    specs.append(
        a.repeat(
            a.splice(a.scale(g("g721"), 0.3), a.scale(g("mesa_fp"), 0.08), at=15_000),
            3,
            name="idle_burst_train",
        )
    )

    # ------------------------------------------------------------ adversarial
    # Behaviour flips every 500 instructions — exactly the catalog
    # control interval, so every interval's statistics straddle a
    # transition and the deviation signal is maximally aliased.
    specs.append(
        a.interleave(
            a.scale(g("adpcm"), 0.4),
            a.scale(g("art"), 0.3),
            quantum=500,
            name="adv_interval_alias",
        )
    )
    # Sawtooth: demand rises and collapses six times.
    specs.append(
        a.repeat(
            a.concat(a.scale(g("swim"), 0.12), a.scale(g("g721"), 0.12)),
            6,
            name="adv_sawtooth",
        )
    )
    # Near-stationary with a jittered noise floor: decay should win,
    # any attack is a controller false positive.
    specs.append(
        a.perturb(g("g721"), seed=41, strength=0.12, name="adv_noise_floor")
    )
    # Long decay then a demand step, repeated with opposite senses.
    specs.append(
        a.concat(
            a.scale(g("g721"), 0.6),
            a.scale(g("swim"), 0.35),
            a.scale(g("mcf"), 0.25),
            name="adv_decay_trap",
        )
    )
    # Thrash between the regulator's two frequency extremes.
    specs.append(
        a.interleave(
            a.scale(g("swim"), 0.35),
            a.scale(g("parser"), 0.35),
            quantum=1500,
            name="adv_slew_thrash",
        )
    )
    # A perturbed epic family member: same shape, different statistics.
    specs.append(
        a.perturb(g("epic"), seed=7, strength=0.3, name="adv_epic_variant")
    )
    # Double splice with interval-scale bursts.
    specs.append(
        a.splice(
            a.scale(g("bzip2"), 0.8),
            a.scale(g("art"), 0.05),
            at=40_000,
            name="adv_microburst",
        )
    )

    return {spec.name: spec for spec in specs}


#: All derived scenarios, keyed by name.
DERIVED_BENCHMARKS: dict[str, BenchmarkSpec] = _build_derived()


def derived_names() -> list[str]:
    """Names of every derived scenario, sorted."""
    return sorted(DERIVED_BENCHMARKS)


# replace=True keeps the registration idempotent if a failed first
# import is retried (the loader only latches success; see
# catalog._load_derived) — derived names cannot be squatted beforehand
# because register_benchmark resolves this module first.
for _spec in DERIVED_BENCHMARKS.values():
    register_benchmark(_spec, replace=True)
