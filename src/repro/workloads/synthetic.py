"""Seeded synthetic instruction-trace generator.

Turns a list of :class:`~repro.workloads.phases.Phase` descriptions
into a deterministic block-structured trace.  Each phase first lays out
a *static program image*: every word slot of the code footprint gets a
fixed instruction class drawn from the phase's mix.  The dynamic stream
then walks this image with loop-nest behaviour (dwell in one loop body,
iterate it, move on), so static properties are stable — a branch site
is always a branch, with a consistent target — which is what lets the
real branch predictor, BTB and L1I behave as they do on real programs.

Everything downstream is real: the PCs drive the actual L1I and branch
predictor, the effective addresses drive the actual L1D/L2, so cache
miss rates and branch accuracies are *emergent* from the phase's
locality parameters, not asserted.

Generation is vectorised per block with numpy.  Consumers pick the
representation: :meth:`SyntheticTrace.blocks` yields plain-list
:class:`~repro.uarch.trace.InstructionBlock` objects (the reference
per-instruction path), while :meth:`SyntheticTrace.columns` hands the
raw numpy arrays for the whole trace to the trace compiler
(:mod:`repro.uarch.compiled_trace`) without a per-block list
round-trip.  Both draw from one generator routine, so the streams are
identical instruction for instruction.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.uarch.isa import NUM_CLASSES, InstructionClass
from repro.uarch.trace import MAX_DEP_DISTANCE, InstructionBlock
from repro.workloads.phases import Phase

_BLOCK = 4096
#: Far region modelling data sets that dwarf the L2 (64 MiB).
_FAR_SPAN = 64 * 1024 * 1024
_FAR_BASE = 1 << 32
_LINE = 64


class SyntheticTrace:
    """A reproducible trace over a sequence of phases.

    Parameters
    ----------
    phases:
        The workload's phase script, executed in order.
    seed:
        Generator seed; identical (phases, seed) pairs produce
        identical traces.
    data_base:
        Base address of the (near) data region.
    code_base:
        Base address of the instruction region.
    """

    def __init__(
        self,
        phases: Sequence[Phase],
        seed: int = 0,
        data_base: int = 1 << 20,
        code_base: int = 1 << 28,
    ) -> None:
        if not phases:
            raise WorkloadError("a workload needs at least one phase")
        self.phases = list(phases)
        self.seed = seed
        self.data_base = data_base
        self.code_base = code_base
        self._total = sum(p.instructions for p in self.phases)

    @property
    def total_instructions(self) -> int:
        """Exact trace length."""
        return self._total

    def blocks(self) -> Iterator[InstructionBlock]:
        """Generate the trace, block by block."""
        for kinds, src1, src2, pcs, addrs, taken, targets in self._arrays():
            yield InstructionBlock(
                kinds=kinds.tolist(),
                src1=src1.tolist(),
                src2=src2.tolist(),
                pcs=pcs.tolist(),
                addrs=addrs.tolist(),
                taken=taken.tolist(),
                targets=targets.tolist(),
            )

    def columns(self) -> tuple[np.ndarray, ...]:
        """The whole trace as seven numpy columns.

        Returns ``(kinds, src1, src2, pcs, addrs, taken, targets)``
        concatenated over every block, drawn from the same seeded
        stream as :meth:`blocks`.
        """
        parts: list[list[np.ndarray]] = [[] for _ in range(7)]
        for arrays in self._arrays():
            for store, array in zip(parts, arrays):
                store.append(array)
        return tuple(np.concatenate(store) for store in parts)

    # ------------------------------------------------------------------
    def _arrays(self) -> Iterator[tuple[np.ndarray, ...]]:
        """Yield per-block struct-of-arrays tuples for the whole trace."""
        rng = np.random.default_rng(self.seed)
        for phase in self.phases:
            yield from self._phase_arrays(phase, rng)

    def _phase_arrays(
        self, phase: Phase, rng: np.random.Generator
    ) -> Iterator[tuple[np.ndarray, ...]]:
        probabilities = np.zeros(NUM_CLASSES)
        for klass, fraction in phase.mix.items():
            probabilities[int(klass)] = fraction
        probabilities /= probabilities.sum()

        footprint = max(_LINE, phase.code_footprint_kb * 1024)
        body = min(max(16, phase.loop_body_bytes), footprint)
        body_slots = body // 4
        dwell = phase.loop_dwell_instructions
        ws_bytes = max(_LINE, phase.working_set_kb * 1024)

        # --- static program image ------------------------------------------
        footprint_slots = footprint // 4
        static_kinds = rng.choice(NUM_CLASSES, size=footprint_slots, p=probabilities)
        # Branch targets are a fixed function of the slot (consistent
        # across executions, so the BTB can hold them): a pseudo-random
        # word inside the footprint.
        slot_ids = np.arange(footprint_slots, dtype=np.int64)
        static_targets = self.code_base + ((slot_ids * 2654435761 + 977) % footprint_slots) * 4

        instr_cursor = 0
        mem_cursor = 0
        remaining = phase.instructions
        dep_p = min(1.0, 1.0 / phase.dep_mean_distance)
        mostly_taken = phase.branch_taken_prob >= 0.5

        while remaining > 0:
            n = _BLOCK if remaining >= _BLOCK else remaining
            remaining -= n

            # --- loop-nest walk of the static image ------------------------
            idx = instr_cursor + np.arange(n)
            region_slot = ((idx // dwell) * body_slots) % footprint_slots
            slots = region_slot + idx % body_slots
            np.remainder(slots, footprint_slots, out=slots)
            kinds = static_kinds[slots]
            pcs = self.code_base + slots * 4
            instr_cursor += n

            # --- register dependencies -------------------------------------
            has1 = rng.random(n) < phase.dep_density
            dist1 = rng.geometric(dep_p, size=n)
            np.clip(dist1, 1, MAX_DEP_DISTANCE, out=dist1)
            src1 = np.where(has1, dist1, 0)
            has2 = rng.random(n) < phase.dep_density * 0.45
            dist2 = rng.geometric(max(1e-3, dep_p * 0.6), size=n)
            np.clip(dist2, 1, MAX_DEP_DISTANCE, out=dist2)
            src2 = np.where(has2, dist2, 0)

            # --- branches ---------------------------------------------------
            # The loop iteration index is shared by every branch site in
            # the body: each body behaves like an inner loop with trip
            # count ``loop_period`` (the backward branch falls through
            # every loop_period-th iteration), plus per-instance noise.
            is_branch = kinds == int(InstructionClass.BRANCH)
            n_branches = int(is_branch.sum())
            taken = np.zeros(n, dtype=bool)
            targets = np.zeros(n, dtype=np.int64)
            if n_branches:
                iter_index = (idx[is_branch] % dwell) // body_slots
                pattern = (iter_index % phase.loop_period) != 0
                if not mostly_taken:
                    pattern = ~pattern
                noisy = rng.random(n_branches) < phase.branch_noise
                random_outcomes = rng.random(n_branches) < 0.5
                outcomes = np.where(noisy, random_outcomes, pattern)
                taken[is_branch] = outcomes
                targets[is_branch] = static_targets[slots[is_branch]]

            # --- memory addresses -------------------------------------------
            is_mem = (kinds == int(InstructionClass.LOAD)) | (
                kinds == int(InstructionClass.STORE)
            )
            n_mem = int(is_mem.sum())
            addrs = np.zeros(n, dtype=np.int64)
            if n_mem:
                selector = rng.random(n_mem)
                far = selector < phase.far_miss_fraction
                streaming = (~far) & (
                    selector < phase.far_miss_fraction + phase.stride_fraction
                )
                scattered = ~(far | streaming)
                mem_addrs = np.zeros(n_mem, dtype=np.int64)
                n_far = int(far.sum())
                if n_far:
                    mem_addrs[far] = _FAR_BASE + (
                        rng.integers(0, _FAR_SPAN // _LINE, size=n_far) * _LINE
                    )
                n_stream = int(streaming.sum())
                if n_stream:
                    steps = mem_cursor + phase.stride_bytes * np.arange(1, n_stream + 1)
                    mem_addrs[streaming] = self.data_base + steps % ws_bytes
                    mem_cursor = int(steps[-1]) % ws_bytes
                n_scatter = int(scattered.sum())
                if n_scatter:
                    mem_addrs[scattered] = self.data_base + rng.integers(
                        0, ws_bytes, size=n_scatter
                    )
                addrs[is_mem] = mem_addrs

            yield kinds, src1, src2, pcs, addrs, taken, targets
