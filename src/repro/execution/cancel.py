"""Cooperative per-job cancellation.

A :class:`CancelToken` is handed to the orchestrator when a job is
created; any thread may :meth:`~CancelToken.cancel` it (the daemon's
``DELETE /jobs/{id}`` handler, a watchdog, a test).  The orchestrator
checks the token at its natural preemption points — between cells on
the serial backend, at task pickup and every future completion on the
pool backends — and raises :class:`ExecutionCancelled`, which rides
the same cleanup rails PR 8 built for Ctrl-C: thread pools cancel
queued futures, process pools terminate and join, and exported
``/dev/shm`` trace segments are unlinked before the exception reaches
the caller.

Cancellation is cooperative, not preemptive: a cell already simulating
finishes (and is announced) before the token is honoured.  That keeps
the invariant every checkpointing consumer relies on — an announced
outcome is a durable fact.
"""

from __future__ import annotations

import threading


class ExecutionCancelled(Exception):
    """Raised inside an orchestrator run when its token is cancelled."""


class CancelToken:
    """A one-way, thread-safe cancellation flag.

    Tokens only ever go from live to cancelled; there is no reset.
    ``wait`` lets polling loops sleep efficiently against the flag.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (or ``timeout``); returns the flag."""
        return self._event.wait(timeout)

    def raise_if_cancelled(self) -> None:
        """Raise :class:`ExecutionCancelled` when the flag is set."""
        if self._event.is_set():
            raise ExecutionCancelled("job cancelled")
