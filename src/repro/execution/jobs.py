"""Named, cancellable execution jobs over the event core.

:class:`JobManager` is the daemon-facing front of the execution layer:
it owns a set of named jobs, runs each on its own worker thread through
an :class:`~repro.experiments.orchestrator.Orchestrator` wired to a
shared :class:`~repro.execution.bus.EventBus`, and buffers every job's
event stream so consumers (the ``repro serve`` NDJSON endpoints, tests)
can read it incrementally — including late joiners, who replay the
buffer from the top.

Jobs on the serial and thread backends share one
:class:`~repro.experiments.executor.ExecutionContext` in dedup mode:
identical scenarios requested by concurrent jobs single-flight into one
execution (see ``ExecutionContext.run``), and everything shares one
warm result front.  The process backend keeps its own worker contexts
and shares through the on-disk store, as always.

Cancellation is the orchestrator's token protocol: ``cancel()`` fires
the job's :class:`~repro.execution.cancel.CancelToken`, the run raises
:class:`~repro.execution.cancel.ExecutionCancelled` at its next
preemption point (after backend cleanup + shared-memory unlink), and
the job's stream terminates with a
:class:`~repro.execution.events.JobCancelled` event.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
import traceback
from typing import Sequence

from repro.execution.bus import EventBus
from repro.execution.cancel import CancelToken, ExecutionCancelled
from repro.execution.events import (
    TERMINAL_EVENTS,
    JobCancelled,
    JobEvent,
    JobFinished,
    JobSubmitted,
)

logger = logging.getLogger(__name__)

#: Job lifecycle states, in order of progression.  ``cancelled`` and
#: ``failed`` are alternative terminals to ``finished``.
JOB_STATES = ("pending", "running", "finished", "failed", "cancelled")


class Job:
    """One named execution: a scenario matrix, its stream, its result.

    All mutation happens under ``_lock`` (held by the manager's bus
    subscriber and the job's worker thread); readers use the snapshot
    accessors, which are safe from any thread.
    """

    def __init__(self, job_id: str, label: str, total: int) -> None:
        self.id = job_id
        self.label = label
        self.total = total
        self.cancel_token = CancelToken()
        self._lock = threading.Lock()
        self._event_arrived = threading.Condition(self._lock)
        self._events: list[JobEvent] = []
        self._state = "pending"
        self._results = None  # ResultSet | None
        self._done = 0
        self._failed = 0
        self._created = time.time()
        self._elapsed: float | None = None

    # --- stream -------------------------------------------------------------
    def _append(self, event: JobEvent) -> None:
        """Buffer one event (the manager's bus subscriber calls this)."""
        with self._lock:
            self._events.append(event)
            kind = event.kind
            if kind == "cell_finished":
                self._done += 1
            elif kind == "cell_failed":
                self._done += 1
                self._failed += 1
            self._event_arrived.notify_all()

    def events_since(self, offset: int, wait: float | None = None) -> list[JobEvent]:
        """The buffered events from ``offset`` on (replayable stream).

        With ``wait``, blocks up to that many seconds for at least one
        new event unless the stream is already terminal — the polling
        primitive behind the NDJSON endpoint.
        """
        with self._lock:
            if wait is not None and offset >= len(self._events) and not self._terminal():
                self._event_arrived.wait(wait)
            return list(self._events[offset:])

    def _terminal(self) -> bool:
        return bool(self._events) and self._events[-1].kind in TERMINAL_EVENTS

    @property
    def finished(self) -> bool:
        """Whether the stream has terminated (any terminal state)."""
        with self._lock:
            return self._terminal()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job's stream terminates; returns that flag."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._terminal():
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._event_arrived.wait(remaining)
            return True

    # --- state --------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _set_state(self, state: str, elapsed: float | None = None) -> None:
        with self._lock:
            self._state = state
            if elapsed is not None:
                self._elapsed = elapsed

    @property
    def results(self):
        """The completed run's ResultSet, or None before completion."""
        with self._lock:
            return self._results

    def status_payload(self) -> dict:
        """The job's progress as a JSON-native dict.

        This is the shared shape of the daemon's job-status responses
        and ``repro campaign status --json``: state plus a
        done/failed/total progress triple.
        """
        with self._lock:
            return {
                "id": self.id,
                "label": self.label,
                "state": self._state,
                "total": self.total,
                "done": self._done,
                "failed": self._failed,
                "events": len(self._events),
                "elapsed_s": self._elapsed,
            }


class JobManager:
    """Owns named jobs and runs them over a shared event bus.

    Parameters mirror the orchestrator knobs a daemon fixes per
    process: one cache directory, one scale/seed default, one shared
    dedup execution context for the in-process backends.

    ``submit`` returns immediately with the :class:`Job`; the matrix
    runs on a daemon worker thread.  Every job's events also reach any
    external subscriber on ``bus`` — the manager's own buffering is
    just another subscription.
    """

    def __init__(
        self,
        cache_dir=None,
        use_cache: bool | None = None,
        scale: float | None = None,
        seed: int = 1,
        workers: int | str | None = None,
        bus: EventBus | None = None,
    ) -> None:
        from repro.experiments.executor import ExecutionContext

        self.bus = bus if bus is not None else EventBus()
        self.context = ExecutionContext(
            cache_dir=cache_dir,
            scale=scale,
            seed=seed,
            use_cache=use_cache,
            dedup=True,
        )
        self._cache_dir = cache_dir
        self._use_cache = use_cache
        #: Worker-count default for submissions that leave theirs unset
        #: (the daemon's --workers flag).
        self.default_workers = workers
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self.bus.subscribe(self._route)

    # --- bus plumbing -------------------------------------------------------
    def _route(self, event: JobEvent) -> None:
        """Bus subscriber: buffer each event on its job.

        Never raises — a buffering hiccup must not cancel the run the
        way a deliberate subscriber exception does.
        """
        try:
            job = self._jobs.get(event.job)
            if job is not None:
                job._append(event)
        except Exception:  # pragma: no cover - defensive
            logger.exception("job event routing failed for %r", event)

    # --- lifecycle ----------------------------------------------------------
    def submit(
        self,
        matrix,
        label: str = "job",
        backend: str | None = None,
        workers: int | str | None = None,
        batch: int | str | None = None,
        start_method: str | None = None,
    ) -> Job:
        """Run ``matrix`` (a Suite or scenario list) as a named job.

        Validates the matrix and knobs synchronously — a bad backend
        name or empty matrix raises here, before a job id is ever
        allocated — then returns the running :class:`Job`.
        """
        from repro.experiments.orchestrator import Orchestrator
        from repro.experiments.scenario import Suite

        scenarios = list(
            matrix.expand() if isinstance(matrix, Suite) else matrix
        )
        if isinstance(matrix, Suite) and label == "job":
            label = matrix.name
        orchestrator = Orchestrator(
            workers=workers if workers is not None else self.default_workers,
            cache_dir=self._cache_dir,
            scale=self.context.scale,
            seed=self.context.seed,
            use_cache=self._use_cache,
            backend=backend,
            start_method=start_method,
            batch=batch,
            events=self.bus,
            context=self.context,
        )
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = self._jobs[job_id] = Job(job_id, label, len(scenarios))
        orchestrator.job_id = job_id
        orchestrator.cancel = job.cancel_token
        self.bus.publish(
            JobSubmitted(job=job_id, label=label, total=len(scenarios))
        )
        thread = threading.Thread(
            target=self._run_job,
            args=(job, orchestrator, scenarios),
            name=f"repro-{job_id}",
            daemon=True,
        )
        with self._lock:
            self._threads.append(thread)
        job._set_state("running")
        thread.start()
        return job

    def _run_job(self, job: Job, orchestrator, scenarios: list) -> None:
        """Worker-thread body: run, then terminate the stream."""
        started = time.perf_counter()
        try:
            results = orchestrator.run(scenarios)
        except ExecutionCancelled:
            elapsed = time.perf_counter() - started
            job._set_state("cancelled", elapsed)
            with job._lock:
                done = job._done
            self.bus.publish(
                JobCancelled(job=job.id, done=done, total=job.total)
            )
            return
        except BaseException:
            # The job died outside any cell (cell failures are outcomes,
            # not exceptions): backend misconfiguration, a subscriber
            # raising, an interpreter-level interrupt.  Terminate the
            # stream with the traceback so consumers see *why*.
            elapsed = time.perf_counter() - started
            job._set_state("failed", elapsed)
            self.bus.publish(
                JobFinished(
                    job=job.id,
                    total=job.total,
                    succeeded=0,
                    failed=job.total,
                    elapsed_s=elapsed,
                    error=traceback.format_exc(),
                )
            )
            return
        elapsed = time.perf_counter() - started
        failed = sum(1 for o in results if not o.ok)
        with job._lock:
            job._results = results
        job._set_state("finished", elapsed)
        self.bus.publish(
            JobFinished(
                job=job.id,
                total=job.total,
                succeeded=job.total - failed,
                failed=failed,
                elapsed_s=elapsed,
            )
        )

    def get(self, job_id: str) -> Job | None:
        """The job under ``job_id``, or None."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Fire ``job_id``'s cancel token; returns whether it existed.

        Cancelling an already-terminal job is a harmless no-op (the
        token fires, nothing is listening any more).
        """
        job = self.get(job_id)
        if job is None:
            return False
        job.cancel_token.cancel()
        return True

    def shutdown(self, timeout: float = 30.0) -> None:
        """Cancel every live job and join the worker threads."""
        for job in self.jobs():
            job.cancel_token.cancel()
        with self._lock:
            threads = list(self._threads)
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    def stats(self) -> dict:
        """Manager-level counters for the daemon's ``/healthz``."""
        jobs = self.jobs()
        return {
            "jobs": len(jobs),
            "running": sum(1 for j in jobs if j.state == "running"),
            "dedup_builds": self.context.dedup_builds,
            "dedup_hits": self.context.dedup_hits,
        }
