"""``repro serve``: the sweep daemon, on nothing but the stdlib.

A small asyncio HTTP/1.1 service in front of a
:class:`~repro.execution.jobs.JobManager`: clients submit scenario
matrices (or whole campaign-TOML files) as jobs, watch their typed
event streams as NDJSON, fetch results, and cancel mid-flight.  No
web framework — the repo's no-new-dependencies rule holds for the
daemon too, so request parsing is a deliberately minimal hand-rolled
HTTP subset (request line, headers, ``Content-Length`` bodies; no
chunked requests, no keep-alive).

Endpoints
---------
``GET  /healthz``
    Liveness plus manager counters (jobs, dedup builds/hits).
``POST /jobs``
    Submit a job.  The JSON body is either a matrix::

        {"benchmarks": ["adpcm"], "configurations": ["sync", "mcd_base"],
         "seeds": [1], "scale": 0.05,
         "backend": "thread", "workers": 2, "batch": 1, "label": "demo"}

    or a campaign file shipped verbatim::

        {"campaign": "<campaign TOML text>"}

    (the campaign's matrix and execution knobs are used; its journal
    and result files are not — the daemon's streams replace them).
    Responds 201 with the job's status payload, including its ``id``.
``GET  /jobs``
    Every job's status payload, in submission order.
``GET  /jobs/{id}``
    One job's status payload (the shape ``repro campaign status
    --json`` shares).
``GET  /jobs/{id}/events[?offset=N]``
    The job's event stream as NDJSON, one ``JobEvent.to_dict`` per
    line, replayed from ``offset`` and then followed live until a
    terminal event (``job_finished``/``job_cancelled``) is sent.
``GET  /jobs/{id}/results``
    The finished job's ``ResultSet`` JSON; 409 until it finishes.
``DELETE /jobs/{id}``
    Fire the job's cancel token; the stream terminates with
    ``job_cancelled`` once the orchestrator unwinds (backends
    cancelled, shared memory unlinked).

Concurrent identical submissions share one warm execution through the
manager's dedup context — see :mod:`repro.execution.jobs`.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Mapping

from repro.errors import CampaignError, ExperimentError
from repro.execution.jobs import Job, JobManager
from repro.version import __version__

logger = logging.getLogger(__name__)

#: How often a live NDJSON stream polls its job's buffer for news.
STREAM_POLL_S = 0.05

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """An error response to send instead of a handler result."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _suite_from_body(body: Mapping) -> tuple[object, dict]:
    """Resolve a POST /jobs body to ``(Suite, execution kwargs)``."""
    from repro.experiments.scenario import Suite

    if "campaign" in body:
        spec = _campaign_spec(body["campaign"])
        return spec.suite(), {
            "backend": spec.backend,
            "workers": spec.workers,
            "batch": spec.batch,
            "start_method": spec.start_method,
            "label": spec.name,
        }
    benchmarks = body.get("benchmarks")
    configurations = body.get("configurations")
    if not benchmarks or not configurations:
        raise _HttpError(
            400,
            "job body needs 'benchmarks' and 'configurations' lists "
            "(or a 'campaign' TOML string)",
        )
    try:
        suite = Suite(
            benchmarks=list(benchmarks),
            configurations=list(configurations),
            seeds=[int(s) for s in body.get("seeds", [1])],
            overrides=[dict(o) for o in body.get("overrides", [{}])],
            scale=body.get("scale"),
            name=str(body.get("label", "job")),
        )
    except (TypeError, ValueError) as exc:
        raise _HttpError(400, f"malformed job matrix: {exc}") from None
    return suite, {
        "backend": body.get("backend"),
        "workers": body.get("workers"),
        "batch": body.get("batch"),
        "start_method": body.get("start_method"),
        "label": str(body.get("label", "job")),
    }


def _campaign_spec(toml_text: object):
    """Parse a campaign file shipped as the request body's string."""
    from repro.campaigns.spec import CampaignSpec

    if not isinstance(toml_text, str) or not toml_text.strip():
        raise _HttpError(400, "'campaign' must be the TOML file's text")
    try:
        import tomllib as _toml
    except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
        from repro.campaigns import _minitoml as _toml
    try:
        data = _toml.loads(toml_text)
    except ValueError as exc:
        raise _HttpError(400, f"campaign body is not valid TOML: {exc}") from None
    try:
        return CampaignSpec.from_dict(data, source="<request>")
    except CampaignError as exc:
        raise _HttpError(400, f"invalid campaign: {exc}") from None


class ReproServer:
    """The asyncio HTTP server over one :class:`JobManager`.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports
    the bound one after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8023,
        manager: JobManager | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = manager if manager is not None else JobManager()
        self._server: asyncio.AbstractServer | None = None

    # --- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("repro serve listening on %s:%d", self.host, self.port)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and cancel every live job."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.manager.shutdown()

    # --- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
                await self._dispatch(writer, method, path, query, body)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ConnectionError,
            ):
                return  # client went away or spoke garbage: nothing to answer
            except Exception:  # noqa: BLE001 - the daemon must not die
                logger.exception("request handling failed")
                await self._send_json(
                    writer, 500, {"error": "internal server error"}
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, dict | None]:
        """Parse one request: (method, path, query params, JSON body)."""
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        path, _, raw_query = target.partition("?")
        query = {}
        for pair in raw_query.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                query[key] = value
        body = None
        length = int(headers.get("content-length", 0) or 0)
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"body is not valid JSON: {exc}") from None
            if not isinstance(body, dict):
                raise _HttpError(400, "body must be a JSON object")
        return method.upper(), path, query, body

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict,
        body: dict | None,
    ) -> None:
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            await self._send_json(
                writer,
                200,
                {"status": "ok", "version": __version__, **self.manager.stats()},
            )
            return
        if segments[:1] == ["jobs"]:
            if len(segments) == 1:
                if method == "POST":
                    await self._submit(writer, body)
                    return
                if method == "GET":
                    await self._send_json(
                        writer,
                        200,
                        {"jobs": [j.status_payload() for j in self.manager.jobs()]},
                    )
                    return
                raise _HttpError(405, f"{method} not allowed on /jobs")
            job = self.manager.get(segments[1])
            if job is None:
                raise _HttpError(404, f"unknown job {segments[1]!r}")
            if len(segments) == 2:
                if method == "GET":
                    await self._send_json(writer, 200, job.status_payload())
                    return
                if method == "DELETE":
                    self.manager.cancel(job.id)
                    await self._send_json(
                        writer, 200, {"id": job.id, "cancelled": True}
                    )
                    return
                raise _HttpError(405, f"{method} not allowed on /jobs/{{id}}")
            if len(segments) == 3 and method == "GET":
                if segments[2] == "events":
                    await self._stream_events(writer, job, query)
                    return
                if segments[2] == "results":
                    await self._send_results(writer, job)
                    return
        raise _HttpError(404, f"no route for {method} {path}")

    # --- handlers -----------------------------------------------------------
    async def _submit(self, writer: asyncio.StreamWriter, body: dict | None) -> None:
        if body is None:
            raise _HttpError(400, "POST /jobs needs a JSON body")
        suite, knobs = _suite_from_body(body)
        label = knobs.pop("label")
        try:
            # Matrix expansion and knob validation happen synchronously
            # in submit(); push them off the event loop.
            job = await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.manager.submit(suite, label=label, **knobs)
            )
        except (ExperimentError, CampaignError) as exc:
            raise _HttpError(400, f"cannot submit job: {exc}") from None
        await self._send_json(writer, 201, job.status_payload())

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job, query: dict
    ) -> None:
        try:
            offset = max(0, int(query.get("offset", 0)))
        except ValueError:
            raise _HttpError(400, f"malformed offset {query.get('offset')!r}") from None
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        terminal_sent = False
        while not terminal_sent:
            events = job.events_since(offset)
            if not events:
                if job.finished:
                    break  # offset already past the terminal event
                await asyncio.sleep(STREAM_POLL_S)
                continue
            offset += len(events)
            for event in events:
                line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
                writer.write(line.encode())
                terminal_sent = terminal_sent or event.kind in (
                    "job_finished",
                    "job_cancelled",
                )
            await writer.drain()

    async def _send_results(self, writer: asyncio.StreamWriter, job: Job) -> None:
        results = job.results
        if results is None:
            state = job.state
            raise _HttpError(
                409,
                f"job {job.id!r} has no results (state {state!r})"
                + ("" if state == "running" else "; it did not finish"),
            )
        await self._send_json(
            writer, 200, {"id": job.id, "results": results.to_dict()}
        )

    # --- response plumbing --------------------------------------------------
    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()


class BackgroundServer:
    """A :class:`ReproServer` on its own event-loop thread (tests).

    ``with BackgroundServer() as server:`` yields a bound, running
    server whose :attr:`port` is routable from the test's own thread;
    exit stops the loop and cancels every job.
    """

    def __init__(self, manager: JobManager | None = None, host: str = "127.0.0.1") -> None:
        self.server = ReproServer(host=host, port=0, manager=manager)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def __enter__(self) -> "BackgroundServer":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(10.0):  # pragma: no cover - startup hang
            raise RuntimeError("serve thread failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is None:  # pragma: no cover - never entered
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(), loop).result(30.0)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(10.0)
        loop.close()
