"""The event-driven execution core.

This package is the seam between *running* a scenario matrix and
*watching* it run: typed lifecycle events (:mod:`.events`), a
thread-safe bus (:mod:`.bus`), cooperative cancellation
(:mod:`.cancel`), named jobs over a shared dedup execution context
(:mod:`.jobs`), console rendering (:mod:`.progress`), and the
``repro serve`` HTTP daemon (:mod:`.serve`, imported lazily — it pulls
in asyncio and the campaign layer, which event consumers don't need).
"""

from repro.execution.bus import EventBus, Handler
from repro.execution.cancel import CancelToken, ExecutionCancelled
from repro.execution.events import (
    EVENT_TYPES,
    TERMINAL_EVENTS,
    CellFailed,
    CellFinished,
    CellStarted,
    JobCancelled,
    JobEvent,
    JobFinished,
    JobSubmitted,
    event_from_dict,
)
from repro.execution.jobs import Job, JobManager
from repro.execution.progress import ConsoleProgress

__all__ = [
    "EVENT_TYPES",
    "TERMINAL_EVENTS",
    "CancelToken",
    "CellFailed",
    "CellFinished",
    "CellStarted",
    "ConsoleProgress",
    "EventBus",
    "ExecutionCancelled",
    "Handler",
    "Job",
    "JobCancelled",
    "JobEvent",
    "JobFinished",
    "JobManager",
    "JobSubmitted",
    "event_from_dict",
]
