"""Console progress rendering as a plain event subscriber.

What used to be an ``on_result`` closure wired into each CLI verb is
now just another :class:`~repro.execution.bus.EventBus` subscriber:
:class:`ConsoleProgress` prints one line per completed cell and a
terminal summary, and never raises — display must not cancel a sweep
the way a deliberately raising subscriber does.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.execution.events import (
    CellFailed,
    CellFinished,
    JobCancelled,
    JobEvent,
    JobFinished,
    JobSubmitted,
)


class ConsoleProgress:
    """Prints an event stream as human progress lines.

    Subscribe the instance itself (``bus.subscribe(progress)``); it is
    a callable handler.  Tracks its own completion counter, so it
    renders correctly from any single job's stream regardless of the
    matrix's completion order.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._done = 0

    def __call__(self, event: JobEvent) -> None:
        try:
            self._render(event)
        except Exception:  # noqa: BLE001 - display must never cancel a run
            pass

    def _render(self, event: JobEvent) -> None:
        if isinstance(event, JobSubmitted):
            print(
                f"[{event.job}] {event.label}: {event.total} cell(s) submitted",
                file=self.stream,
            )
        elif isinstance(event, (CellFinished, CellFailed)):
            self._done += 1
            status = "ok" if isinstance(event, CellFinished) else "FAILED"
            run_id = event.outcome.scenario.run_id if event.outcome else "?"
            print(
                f"[{self._done}/{event.total}] {run_id} {status}",
                file=self.stream,
            )
        elif isinstance(event, JobCancelled):
            print(
                f"[{event.job}] cancelled after {event.done}/{event.total} cell(s)",
                file=self.stream,
            )
        elif isinstance(event, JobFinished):
            print(
                f"[{event.job}] finished: {event.succeeded}/{event.total} ok "
                f"({event.failed} failed) in {event.elapsed_s:.1f}s",
                file=self.stream,
            )
        self.stream.flush()
