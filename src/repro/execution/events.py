"""Typed lifecycle events of an executing job.

Every stage of a job's life — submission, per-cell progress, and its
terminal state — is one frozen dataclass here.  Events are the *only*
seam between the execution core and its consumers: the orchestrator
publishes them on an :class:`~repro.execution.bus.EventBus`, and the
campaign journal, the CLI progress printer, and the ``repro serve``
NDJSON streams are all plain subscribers.  That replaces the ad-hoc
``on_result`` closures every consumer used to hand-wire (the callback
still works, back-compatibly, beside the stream).

Design constraints:

* **Frozen** — an event is a fact; subscribers on other threads must
  never watch one mutate.
* **JSON round-trip** — :meth:`JobEvent.to_dict` /
  :func:`event_from_dict` are exact inverses, so an event can cross an
  HTTP boundary (the daemon's NDJSON stream) or land in a journal and
  be reconstructed losslessly.  ``RunOutcome`` payloads ride their own
  established ``to_dict``/``from_dict``.
* **Self-identifying** — the dict form carries an ``"event"`` tag, so
  heterogeneous streams (one NDJSON line per event) need no framing
  beyond the line itself.

``cell`` indices address positions in the *submitted* matrix, in
matrix order; ``total`` repeats the matrix size on every event so a
subscriber can render progress from any single event without having
seen the submission.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ExperimentError
from repro.experiments.results import RunOutcome

#: ``"event"`` tag -> event class, populated by ``_register``.
EVENT_TYPES: dict[str, type["JobEvent"]] = {}


def _register(cls: type["JobEvent"]) -> type["JobEvent"]:
    """Class decorator: index an event type by its ``kind`` tag."""
    EVENT_TYPES[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class JobEvent:
    """Base event: everything that happens happens to a named job."""

    job: str

    #: The ``"event"`` tag of the serialized form (class attribute).
    kind = "event"

    def to_dict(self) -> dict:
        """JSON-native dict form, tagged with ``"event": kind``."""
        data: dict = {"event": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, RunOutcome):
                value = value.to_dict()
            data[f.name] = value
        return data


@_register
@dataclass(frozen=True)
class JobSubmitted(JobEvent):
    """A job entered the system: ``total`` cells under ``label``."""

    label: str = ""
    total: int = 0

    kind = "job_submitted"


@_register
@dataclass(frozen=True)
class CellStarted(JobEvent):
    """Cell ``cell`` began executing (best-effort per backend).

    The serial and thread backends announce the start from the worker
    that picks the cell up; the process backend cannot observe its
    workers' starts, so it announces start and finish together when the
    result arrives.  Per cell, ``CellStarted`` always precedes the
    finish event — the ordering subscribers may rely on.
    """

    cell: int = 0
    total: int = 0
    run_id: str = ""

    kind = "cell_started"


@_register
@dataclass(frozen=True)
class CellFinished(JobEvent):
    """Cell ``cell`` completed successfully; ``outcome`` has the record."""

    cell: int = 0
    total: int = 0
    outcome: RunOutcome | None = None

    kind = "cell_finished"


@_register
@dataclass(frozen=True)
class CellFailed(JobEvent):
    """Cell ``cell`` failed; ``outcome.error`` carries the traceback.

    Failure is error-isolated exactly like the ``on_result`` path: the
    rest of the matrix continues, and the failed cell's outcome is a
    first-class result, not an exception.
    """

    cell: int = 0
    total: int = 0
    outcome: RunOutcome | None = None

    kind = "cell_failed"


@_register
@dataclass(frozen=True)
class JobCancelled(JobEvent):
    """The job's cancellation token fired; ``done`` cells had completed.

    Cells already announced stay announced (and journalled); the rest
    were never executed.  This is a *terminal* event: no further events
    follow for the job.
    """

    done: int = 0
    total: int = 0

    kind = "job_cancelled"


@_register
@dataclass(frozen=True)
class JobFinished(JobEvent):
    """The job ran to completion.  Terminal.

    ``error`` is None for a normally completed matrix (individual cell
    failures are :class:`CellFailed` events and count in ``failed``);
    it carries a traceback only when the job itself died outside any
    cell (e.g. a backend misconfiguration surfacing at run time).
    """

    total: int = 0
    succeeded: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    error: str | None = None

    kind = "job_finished"


#: Terminal event kinds: nothing follows one of these on a job stream.
TERMINAL_EVENTS = (JobCancelled.kind, JobFinished.kind)


def event_from_dict(data: dict) -> JobEvent:
    """Rebuild an event from its :meth:`JobEvent.to_dict` form.

    Raises :class:`~repro.errors.ExperimentError` for unknown tags or
    malformed payloads, so stream consumers fail loudly instead of
    guessing.
    """
    if not isinstance(data, dict):
        raise ExperimentError(f"event payload must be a dict, got {type(data).__name__}")
    kind = data.get("event")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ExperimentError(
            f"unknown event tag {kind!r}; expected one of {sorted(EVENT_TYPES)}"
        )
    kwargs = {}
    try:
        for f in fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            if f.name == "outcome" and value is not None:
                value = RunOutcome.from_dict(value)
            kwargs[f.name] = value
        return cls(**kwargs)
    except (KeyError, TypeError, AttributeError) as exc:
        raise ExperimentError(f"malformed {kind!r} event payload: {exc}") from None
