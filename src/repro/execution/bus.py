"""A thread-safe publish/subscribe channel for :mod:`~repro.execution.events`.

One :class:`EventBus` per execution scope (a campaign, a daemon).
Publishers are orchestrator loops and worker threads; subscribers are
whatever wants to watch: the campaign journal checkpoint, the CLI
progress printer, the daemon's per-job NDJSON buffers.

Delivery contract
-----------------
* ``publish`` calls every matching subscriber **synchronously in the
  publishing thread**, in subscription order.  There is no queue: when
  ``publish`` returns, every subscriber has seen the event.  This is
  what lets the campaign journal fsync a cell *before* the orchestrator
  announces the next one — the same durability the old ``on_result``
  closure had.
* A subscriber exception **propagates to the publisher**.  That is a
  feature, not a hazard: it is exactly how a checkpointing subscriber
  cancels a sweep (the orchestrator treats it like Ctrl-C — backends
  cancel, shared memory unlinks, the exception keeps propagating).
  Subscribers that must never disturb execution (progress printers,
  stream buffers) catch their own errors.
* Subscribe/unsubscribe are safe from any thread, including from
  inside a running handler; the in-flight ``publish`` keeps using the
  snapshot it started with.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.execution.events import JobEvent

#: A subscriber: any callable taking one event.
Handler = Callable[[JobEvent], None]


class EventBus:
    """Synchronous, thread-safe event fan-out (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: subscription order is delivery order.
        self._subscribers: list[tuple[Handler, str | None]] = []

    def subscribe(self, handler: Handler, job: str | None = None) -> Handler:
        """Register ``handler`` for every event (or one job's events).

        ``job`` filters delivery to events whose ``.job`` matches.
        Returns the handler, so ``bus.subscribe(fn)`` can be used as an
        expression; the same callable can only be registered once
        (re-subscribing moves nothing and raises nothing — it is a
        no-op when the (handler, job) pair is already present).
        """
        with self._lock:
            if (handler, job) not in self._subscribers:
                self._subscribers.append((handler, job))
        return handler

    def unsubscribe(self, handler: Handler, job: str | None = None) -> bool:
        """Remove one subscription; returns whether it was present."""
        with self._lock:
            try:
                self._subscribers.remove((handler, job))
                return True
            except ValueError:
                return False

    @contextmanager
    def subscribed(self, handler: Handler, job: str | None = None) -> Iterator[Handler]:
        """Scoped subscription: unsubscribes however the block exits."""
        self.subscribe(handler, job=job)
        try:
            yield handler
        finally:
            self.unsubscribe(handler, job=job)

    def publish(self, event: JobEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order.

        Handlers run outside the bus lock (they may subscribe,
        unsubscribe, or publish); an exception from a handler aborts
        delivery to later subscribers and propagates to the caller —
        the documented cancellation lever.
        """
        with self._lock:
            subscribers = list(self._subscribers)
        for handler, job in subscribers:
            if job is None or job == event.job:
                handler(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._subscribers)
