"""``python -m repro`` dispatches to the CLI.

The guard matters: tools that import every module (doctest collection,
``pytest --doctest-modules``) must be able to import this one without
running the CLI.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
