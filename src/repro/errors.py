"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range or inconsistent."""


class ClockError(ReproError):
    """A clock was driven outside its contract (e.g. time moved backwards)."""


class RegulatorError(ReproError):
    """A DVFS regulator request was invalid (frequency out of range, ...)."""


class TraceError(ReproError):
    """An instruction trace is malformed or exhausted unexpectedly."""


class WorkloadError(ReproError):
    """A workload definition is unknown or internally inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (a bug, not user error)."""


class ControlError(ReproError):
    """A frequency controller was misconfigured or misused."""


class ExperimentError(ReproError):
    """An experiment specification cannot be run (unknown algorithm, ...)."""


class ResultDBError(ReproError):
    """A result-database operation failed (bad record, empty trajectory, ...)."""


class CampaignError(ReproError):
    """A campaign file or its checkpoint journal is unusable as given."""
