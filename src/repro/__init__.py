"""repro — a reproduction of Semeraro et al., MICRO 2002.

*Dynamic Frequency and Voltage Control for a Multiple Clock Domain
Microarchitecture*: a four-domain GALS out-of-order processor whose
per-domain frequencies/voltages are steered on-line by the Attack/Decay
controller using issue-queue utilization.

Quick start — declare a scenario matrix and orchestrate it::

    from repro import Orchestrator, Suite

    suite = Suite(
        benchmarks=["adpcm", "gsm", "epic"],
        configurations=["sync", "mcd_base", "attack_decay", "dynamic_5"],
    )
    results = Orchestrator(workers=4).run(suite)

    record = results.get("gsm", "attack_decay")
    print(record.summary.cpi, record.summary.epi)
    print(results.aggregate("attack_decay", reference="mcd_base"))

Configurations are named registry entries (``repro.CONFIGURATIONS``;
``python -m repro list-configurations`` lists them) and new ones are one
decorator away::

    from repro import SimulationSpec, register_configuration

    @register_configuration("my_config")
    def my_config(ctx, benchmark, scale, seed):
        "MCD processor with a custom twist."
        return SimulationSpec(benchmark=benchmark, scale=scale, seed=seed)

Single runs stay one call: build a
:class:`~repro.sim.engine.SimulationSpec` and :func:`run_spec` it.  See
``docs/experiments.md`` for the full scenario API, ``examples/`` for
complete scenarios and ``benchmarks/`` for the harness regenerating
every table and figure of the paper.
"""

from repro.campaigns import CampaignJournal, CampaignRunner, CampaignSpec
from repro.config import (
    AttackDecayParams,
    Domain,
    MCDConfig,
    PAPER_OPERATING_POINT,
    ProcessorConfig,
)
from repro.control import (
    AttackDecayController,
    FixedFrequencyController,
    GlobalDVFSController,
    OfflineController,
    OfflineProfiler,
    build_offline_schedule,
    estimate_attack_decay_hardware,
)
from repro.experiments import (
    CLOCKING_MODES,
    CONFIGURATIONS,
    CONTROLLERS,
    ExecutionContext,
    Orchestrator,
    ResultSet,
    RunOutcome,
    Scenario,
    Suite,
    configuration_names,
    register_clocking_mode,
    register_configuration,
    register_controller,
    run_suite,
)
from repro.metrics import Comparison, RunSummary, aggregate, compare, summarize
from repro.sim import ExperimentRunner, SimulationSpec, run_spec
from repro.uarch import CoreOptions, CoreResult, MCDCore
from repro.workloads import BENCHMARKS, Phase, SyntheticTrace, get_benchmark

from repro.version import __version__

__all__ = [
    "AttackDecayController",
    "AttackDecayParams",
    "BENCHMARKS",
    "CLOCKING_MODES",
    "CONFIGURATIONS",
    "CONTROLLERS",
    "CampaignJournal",
    "CampaignRunner",
    "CampaignSpec",
    "Comparison",
    "CoreOptions",
    "CoreResult",
    "Domain",
    "ExecutionContext",
    "ExperimentRunner",
    "FixedFrequencyController",
    "GlobalDVFSController",
    "MCDConfig",
    "MCDCore",
    "OfflineController",
    "OfflineProfiler",
    "Orchestrator",
    "PAPER_OPERATING_POINT",
    "Phase",
    "ProcessorConfig",
    "ResultSet",
    "RunOutcome",
    "RunSummary",
    "Scenario",
    "SimulationSpec",
    "Suite",
    "SyntheticTrace",
    "aggregate",
    "build_offline_schedule",
    "compare",
    "configuration_names",
    "estimate_attack_decay_hardware",
    "get_benchmark",
    "register_clocking_mode",
    "register_configuration",
    "register_controller",
    "run_spec",
    "run_suite",
    "summarize",
    "__version__",
]
