"""repro — a reproduction of Semeraro et al., MICRO 2002.

*Dynamic Frequency and Voltage Control for a Multiple Clock Domain
Microarchitecture*: a four-domain GALS out-of-order processor whose
per-domain frequencies/voltages are steered on-line by the Attack/Decay
controller using issue-queue utilization.

Quick start::

    from repro import (
        AttackDecayController, AttackDecayParams, SimulationSpec, run_spec,
    )

    spec = SimulationSpec(
        benchmark="epic",
        controller=AttackDecayController(AttackDecayParams()),
    )
    result = run_spec(spec)
    print(result.cpi, result.epi)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
harness regenerating every table and figure of the paper.
"""

from repro.config import (
    AttackDecayParams,
    Domain,
    MCDConfig,
    PAPER_OPERATING_POINT,
    ProcessorConfig,
)
from repro.control import (
    AttackDecayController,
    FixedFrequencyController,
    GlobalDVFSController,
    OfflineController,
    OfflineProfiler,
    build_offline_schedule,
    estimate_attack_decay_hardware,
)
from repro.metrics import Comparison, RunSummary, aggregate, compare, summarize
from repro.sim import ExperimentRunner, SimulationSpec, run_spec
from repro.uarch import CoreOptions, CoreResult, MCDCore
from repro.workloads import BENCHMARKS, Phase, SyntheticTrace, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "AttackDecayController",
    "AttackDecayParams",
    "BENCHMARKS",
    "Comparison",
    "CoreOptions",
    "CoreResult",
    "Domain",
    "ExperimentRunner",
    "FixedFrequencyController",
    "GlobalDVFSController",
    "MCDConfig",
    "MCDCore",
    "OfflineController",
    "OfflineProfiler",
    "PAPER_OPERATING_POINT",
    "Phase",
    "ProcessorConfig",
    "RunSummary",
    "SimulationSpec",
    "SyntheticTrace",
    "aggregate",
    "build_offline_schedule",
    "compare",
    "estimate_attack_decay_hardware",
    "get_benchmark",
    "run_spec",
    "summarize",
    "__version__",
]
